package vfs

import (
	"errors"
	"io"
	"io/fs"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, b []byte) {
	t.Helper()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fsys FS, name string) []byte {
	t.Helper()
	f, err := fsys.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if n, err := f.ReadAt(buf, 0); err != nil && (err != io.EOF || int64(n) < size) {
			t.Fatal(err)
		}
	}
	return buf
}

func TestMemSyncedPrefixSurvivesCrash(t *testing.T) {
	m := NewMem(1)
	if err := m.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenAppend("db/seg")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("+volatile"))
	m.Crash()
	got := readAll(t, m, "db/seg")
	if len(got) < len("durable") || string(got[:7]) != "durable" {
		t.Fatalf("synced prefix damaged: %q", got)
	}
	if len(got) > len("durable+volatile") {
		t.Fatalf("crash grew the file: %q", got)
	}
}

func TestMemUnsyncedSuffixTornDeterministically(t *testing.T) {
	// The same seed must tear the same way; across many seeds all three
	// outcomes (lost, torn, kept) must occur.
	outcomes := map[int]bool{}
	var first, second []byte
	for seed := int64(0); seed < 64; seed++ {
		run := func() []byte {
			m := NewMem(seed)
			m.MkdirAll("d")
			f, _ := m.OpenAppend("d/f")
			writeAll(t, f, []byte("sync"))
			f.Sync()
			m.SyncDir("d")
			writeAll(t, f, []byte("unsynced-data"))
			m.Crash()
			return readAll(t, m, "d/f")
		}
		a, b := run(), run()
		if string(a) != string(b) {
			t.Fatalf("seed %d not deterministic: %q vs %q", seed, a, b)
		}
		if seed == 0 {
			first = a
		}
		if seed == 1 {
			second = a
		}
		outcomes[len(a)] = true
	}
	if len(outcomes) < 3 {
		t.Fatalf("tearing not varied across seeds: lengths %v", outcomes)
	}
	_ = first
	_ = second
}

func TestMemCreateWithoutDirSyncVanishes(t *testing.T) {
	m := NewMem(2)
	m.MkdirAll("d")
	f, _ := m.Create("d/new")
	writeAll(t, f, []byte("x"))
	f.Sync() // file content synced, directory entry not
	f.Close()
	m.Crash()
	if _, err := m.Open("d/new"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("un-dir-synced file should vanish, got %v", err)
	}
}

func TestMemRemoveWithoutDirSyncResurrects(t *testing.T) {
	m := NewMem(3)
	m.MkdirAll("d")
	f, _ := m.Create("d/f")
	writeAll(t, f, []byte("back"))
	f.Sync()
	f.Close()
	m.SyncDir("d")
	if err := m.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("d/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("removed file still visible")
	}
	m.Crash()
	if got := readAll(t, m, "d/f"); string(got) != "back" {
		t.Fatalf("removed-but-not-dir-synced file should resurrect, got %q", got)
	}
	// After a dir sync the removal is durable.
	m.Remove("d/f")
	m.SyncDir("d")
	m.Crash()
	if _, err := m.Open("d/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("durably removed file came back: %v", err)
	}
}

func TestMemRenameWithoutDirSyncRevertsOnCrash(t *testing.T) {
	m := NewMem(4)
	m.MkdirAll("d")
	f, _ := m.Create("d/tmp")
	writeAll(t, f, []byte("v"))
	f.Sync()
	f.Close()
	m.SyncDir("d")
	if err := m.Rename("d/tmp", "d/final"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.Open("d/final"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("un-synced rename should revert, got %v", err)
	}
	if got := readAll(t, m, "d/tmp"); string(got) != "v" {
		t.Fatalf("old name should survive, got %q", got)
	}
	// Synced rename sticks.
	m.Rename("d/tmp", "d/final")
	m.SyncDir("d")
	m.Crash()
	if got := readAll(t, m, "d/final"); string(got) != "v" {
		t.Fatalf("synced rename lost: %q", got)
	}
}

func TestMemReadDirAndTruncate(t *testing.T) {
	m := NewMem(5)
	m.MkdirAll("d")
	for _, n := range []string{"b", "a", "c"} {
		f, _ := m.Create("d/" + n)
		f.Close()
	}
	names, err := m.ReadDir("d")
	if err != nil || len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	f, _ := m.OpenAppend("d/a")
	writeAll(t, f, []byte("0123456789"))
	f.Sync()
	if err := m.Truncate("d/a", 4); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "d/a"); string(got) != "0123" {
		t.Fatalf("truncate: %q", got)
	}
	m.SyncDir("d")
	m.Crash()
	if got := readAll(t, m, "d/a"); string(got) != "0123" {
		t.Fatalf("truncate not durable: %q", got)
	}
}

func TestMemFlipBit(t *testing.T) {
	m := NewMem(6)
	m.MkdirAll("d")
	f, _ := m.Create("d/f")
	writeAll(t, f, []byte{0x00, 0x00})
	f.Close()
	if err := m.FlipBit("d/f", 1, 0x80); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, m, "d/f"); got[1] != 0x80 {
		t.Fatalf("bit not flipped: %v", got)
	}
	if err := m.FlipBit("d/f", 99, 1); err == nil {
		t.Fatal("out-of-range flip should error")
	}
}

func TestFaultCrashAtBoundary(t *testing.T) {
	// Boundary 3 is the Sync: the write survives volatile, the sync never
	// lands, and every later op fails with ErrPowerCut until Restart.
	flt := NewFault(FaultConfig{Seed: 7, CrashAt: 3})
	flt.MkdirAll("d")
	f, err := flt.OpenAppend("d/f") // boundary 1
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("x")) // boundary 2
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync at crash boundary = %v", err)
	}
	if !flt.Crashed() {
		t.Fatal("fault not marked crashed")
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut = %v", err)
	}
	if _, err := flt.Open("d/f"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("open after cut = %v", err)
	}
	flt.Restart()
	if flt.Crashed() {
		t.Fatal("restart did not clear crash")
	}
	// The un-dir-synced file is gone after the reboot.
	if _, err := flt.Open("d/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("after restart open = %v", err)
	}
	if flt.Boundaries() != 3 {
		t.Fatalf("boundaries = %d", flt.Boundaries())
	}
}

func TestFaultDropSync(t *testing.T) {
	flt := NewFault(FaultConfig{Seed: 8, DropSyncRate: 1})
	flt.MkdirAll("d")
	f, _ := flt.OpenAppend("d/f")
	writeAll(t, f, []byte("never-durable"))
	if err := f.Sync(); err != nil {
		t.Fatalf("lying fsync should report success, got %v", err)
	}
	if err := flt.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if flt.DroppedSyncs() != 2 {
		t.Fatalf("dropped = %d", flt.DroppedSyncs())
	}
	flt.Mem().Crash()
	// Both the content sync and the dir sync were dropped: the file may
	// have vanished entirely, or survived torn — but never as durable.
	if _, err := flt.Open("d/f"); err == nil {
		got := readAll(t, flt, "d/f")
		if string(got) == "never-durable" {
			t.Fatalf("dropped fsync still made data durable")
		}
	}
}

func TestOSRoundTripAndSyncDir(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	sub := filepath.Join(dir, "db")
	if err := fsys.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenAppend(filepath.Join(sub, "seg"))
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(sub); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if got := readAll(t, fsys, filepath.Join(sub, "seg")); string(got) != "hello" {
		t.Fatalf("roundtrip: %q", got)
	}
	if err := fsys.Rename(filepath.Join(sub, "seg"), filepath.Join(sub, "seg2")); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir(sub)
	if err != nil || len(names) != 1 || names[0] != "seg2" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := fsys.Truncate(filepath.Join(sub, "seg2"), 2); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fsys, filepath.Join(sub, "seg2")); string(got) != "he" {
		t.Fatalf("truncate: %q", got)
	}
	if err := fsys.Remove(filepath.Join(sub, "seg2")); err != nil {
		t.Fatal(err)
	}
}
