package vfs

import (
	"fmt"
	"math/rand"
	"sync"
)

// FaultConfig configures a Fault FS.
type FaultConfig struct {
	// Seed drives both the drop-sync rolls and the Mem's crash-time torn
	// writes, so a run replays bit-for-bit.
	Seed int64
	// CrashAt is the 1-based mutation boundary at which the power cut
	// fires (0 = never). Boundaries are counted across writes, syncs,
	// directory syncs, creates, renames, removes and truncates — every
	// point at which a real machine can lose power mid-operation.
	CrashAt int64
	// DropSyncRate is the probability a Sync or SyncDir silently does
	// nothing while still reporting success — the lying-fsync failure
	// mode of consumer drives and some virtualised disks.
	DropSyncRate float64
	// DiskCapacity is a hard quota in bytes on the underlying Mem device
	// (0 = unlimited): once full, writes return partial counts with
	// ErrNoSpace and creates fail — see Mem.SetCapacity.
	DiskCapacity int64
	// DiskFillPerOp models a device that fills over time: every mutation
	// boundary adds this many phantom external bytes, so the store's own
	// writes race a shrinking disk. Combine with DiskCapacity.
	DiskFillPerOp int64
	// NoSpaceRate is the probability a write, sync, create or close fails
	// transiently with ErrNoSpace even though space exists — the flaky
	// thin-provisioned volume whose quota enforcement is stricter than its
	// usage reporting.
	NoSpaceRate float64
}

// Fault wraps a Mem with a seeded fault schedule. A write that hits the
// crash boundary is applied to the volatile state and then fails — exactly
// a torn write: the caller sees an error, but a prefix of the bytes may
// still survive the reboot. A sync that hits the boundary fails before
// taking effect.
type Fault struct {
	mem *Mem
	cfg FaultConfig

	mu          sync.Mutex
	rng         *rand.Rand
	ops         int64
	crashed     bool
	dropped     int64
	failNoSpace int64 // deterministic: fail the next N eligible ops
	noSpaceHits int64
}

// NewFault returns a Fault FS over a fresh Mem. The Mem's crash-time tear
// schedule is seeded from both Seed and CrashAt: a suite sweeping CrashAt
// across every boundary then also sweeps the tear outcomes (kept, lost,
// torn, bit-flipped) instead of replaying one fixed tear at every boundary.
func NewFault(cfg FaultConfig) *Fault {
	f := &Fault{
		mem: NewMem(cfg.Seed*31 + cfg.CrashAt*2654435761 + 1),
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.DiskCapacity > 0 {
		f.mem.SetCapacity(cfg.DiskCapacity)
	}
	return f
}

// Mem returns the underlying in-memory filesystem.
func (f *Fault) Mem() *Mem { return f.mem }

// Boundaries returns how many mutation boundaries have been crossed.
func (f *Fault) Boundaries() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the power cut has fired.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// DroppedSyncs returns how many syncs were silently dropped.
func (f *Fault) DroppedSyncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// FailNoSpaceNext makes the next n eligible operations (writes, syncs,
// creates and closes) fail with ErrNoSpace regardless of actual space — the
// deterministic hook for pinning ENOSPC to one exact call site, the way
// CrashAt pins a power cut to one boundary.
func (f *Fault) FailNoSpaceNext(n int64) {
	f.mu.Lock()
	f.failNoSpace = n
	f.mu.Unlock()
}

// NoSpaceHits returns how many operations failed with an injected
// ErrNoSpace (transient rate plus FailNoSpaceNext; organic Mem capacity
// failures are not counted here).
func (f *Fault) NoSpaceHits() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.noSpaceHits
}

// injectNoSpace rolls the disk-full dice for one eligible operation.
func (f *Fault) injectNoSpace() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNoSpace > 0 {
		f.failNoSpace--
		f.noSpaceHits++
		return true
	}
	if f.cfg.NoSpaceRate > 0 && f.rng.Float64() < f.cfg.NoSpaceRate {
		f.noSpaceHits++
		return true
	}
	return false
}

// Restart reboots after a power cut: torn writes are applied to the
// unsynced state and the FS powers back on. It is also safe to call when no
// cut fired.
func (f *Fault) Restart() {
	f.mu.Lock()
	f.crashed = false
	f.mu.Unlock()
	f.mem.Crash()
}

// boundary advances the op counter and fires the configured power cut.
func (f *Fault) boundary() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrPowerCut
	}
	f.ops++
	if f.cfg.CrashAt > 0 && f.ops == f.cfg.CrashAt {
		f.crashed = true
		f.mem.PowerOff()
		return ErrPowerCut
	}
	if f.cfg.DiskFillPerOp > 0 {
		f.mem.AddExternalUsage(f.cfg.DiskFillPerOp)
	}
	return nil
}

// dropSync rolls the lying-fsync die.
func (f *Fault) dropSync() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.DropSyncRate > 0 && f.rng.Float64() < f.cfg.DropSyncRate {
		f.dropped++
		return true
	}
	return false
}

// MkdirAll implements FS (not a boundary: the store calls it once at open).
func (f *Fault) MkdirAll(dir string) error { return f.mem.MkdirAll(dir) }

// Create implements FS.
func (f *Fault) Create(name string) (File, error) {
	if err := f.boundary(); err != nil {
		return nil, err
	}
	if f.injectNoSpace() {
		return nil, fmt.Errorf("vfs: create: %w: %s", ErrNoSpace, name)
	}
	h, err := f.mem.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: h}, nil
}

// OpenAppend implements FS.
func (f *Fault) OpenAppend(name string) (File, error) {
	if err := f.boundary(); err != nil {
		return nil, err
	}
	h, err := f.mem.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: h}, nil
}

// Open implements FS (reads are not boundaries).
func (f *Fault) Open(name string) (File, error) {
	h, err := f.mem.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: h}, nil
}

// ReadDir implements FS.
func (f *Fault) ReadDir(dir string) ([]string, error) { return f.mem.ReadDir(dir) }

// Rename implements FS.
func (f *Fault) Rename(oldName, newName string) error {
	if err := f.boundary(); err != nil {
		return err
	}
	return f.mem.Rename(oldName, newName)
}

// Remove implements FS.
func (f *Fault) Remove(name string) error {
	if err := f.boundary(); err != nil {
		return err
	}
	return f.mem.Remove(name)
}

// Truncate implements FS.
func (f *Fault) Truncate(name string, size int64) error {
	if err := f.boundary(); err != nil {
		return err
	}
	return f.mem.Truncate(name, size)
}

// SyncDir implements FS.
func (f *Fault) SyncDir(dir string) error {
	if err := f.boundary(); err != nil {
		return err
	}
	if f.dropSync() {
		return nil
	}
	return f.mem.SyncDir(dir)
}

type faultFile struct {
	f     *Fault
	inner File
}

// Write applies the bytes to the volatile state first and then checks the
// boundary, so a cut at a write boundary leaves a torn write behind. An
// injected ENOSPC fails before any byte lands — the organic partial-write
// path belongs to the Mem's capacity model.
func (h *faultFile) Write(p []byte) (int, error) {
	if h.f.injectNoSpace() {
		return 0, fmt.Errorf("vfs: write: %w", ErrNoSpace)
	}
	n, err := h.inner.Write(p)
	if err != nil {
		return n, err
	}
	if err := h.f.boundary(); err != nil {
		return 0, err
	}
	return n, nil
}

// Sync checks the boundary before taking effect: a cut at a sync boundary
// means the sync never happened. Injected ENOSPC likewise fails the sync
// without syncing — the late-reporting allocation failure.
func (h *faultFile) Sync() error {
	if err := h.f.boundary(); err != nil {
		return err
	}
	if h.f.injectNoSpace() {
		return fmt.Errorf("vfs: sync: %w", ErrNoSpace)
	}
	if h.f.dropSync() {
		return nil
	}
	return h.inner.Sync()
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) { return h.inner.ReadAt(p, off) }
func (h *faultFile) Size() (int64, error)                    { return h.inner.Size() }

// Close can report a deferred ENOSPC: real filesystems flush delayed
// allocations at close, which is exactly where a full disk surfaces last.
// The handle is closed either way — a failed close is not retryable.
func (h *faultFile) Close() error {
	err := h.inner.Close()
	if h.f.injectNoSpace() {
		return fmt.Errorf("vfs: close: %w", ErrNoSpace)
	}
	return err
}
