package vfs

import (
	"math/rand"
	"sync"
)

// FaultConfig configures a Fault FS.
type FaultConfig struct {
	// Seed drives both the drop-sync rolls and the Mem's crash-time torn
	// writes, so a run replays bit-for-bit.
	Seed int64
	// CrashAt is the 1-based mutation boundary at which the power cut
	// fires (0 = never). Boundaries are counted across writes, syncs,
	// directory syncs, creates, renames, removes and truncates — every
	// point at which a real machine can lose power mid-operation.
	CrashAt int64
	// DropSyncRate is the probability a Sync or SyncDir silently does
	// nothing while still reporting success — the lying-fsync failure
	// mode of consumer drives and some virtualised disks.
	DropSyncRate float64
}

// Fault wraps a Mem with a seeded fault schedule. A write that hits the
// crash boundary is applied to the volatile state and then fails — exactly
// a torn write: the caller sees an error, but a prefix of the bytes may
// still survive the reboot. A sync that hits the boundary fails before
// taking effect.
type Fault struct {
	mem *Mem
	cfg FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int64
	crashed bool
	dropped int64
}

// NewFault returns a Fault FS over a fresh Mem. The Mem's crash-time tear
// schedule is seeded from both Seed and CrashAt: a suite sweeping CrashAt
// across every boundary then also sweeps the tear outcomes (kept, lost,
// torn, bit-flipped) instead of replaying one fixed tear at every boundary.
func NewFault(cfg FaultConfig) *Fault {
	return &Fault{
		mem: NewMem(cfg.Seed*31 + cfg.CrashAt*2654435761 + 1),
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Mem returns the underlying in-memory filesystem.
func (f *Fault) Mem() *Mem { return f.mem }

// Boundaries returns how many mutation boundaries have been crossed.
func (f *Fault) Boundaries() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the power cut has fired.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// DroppedSyncs returns how many syncs were silently dropped.
func (f *Fault) DroppedSyncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Restart reboots after a power cut: torn writes are applied to the
// unsynced state and the FS powers back on. It is also safe to call when no
// cut fired.
func (f *Fault) Restart() {
	f.mu.Lock()
	f.crashed = false
	f.mu.Unlock()
	f.mem.Crash()
}

// boundary advances the op counter and fires the configured power cut.
func (f *Fault) boundary() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrPowerCut
	}
	f.ops++
	if f.cfg.CrashAt > 0 && f.ops == f.cfg.CrashAt {
		f.crashed = true
		f.mem.PowerOff()
		return ErrPowerCut
	}
	return nil
}

// dropSync rolls the lying-fsync die.
func (f *Fault) dropSync() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.DropSyncRate > 0 && f.rng.Float64() < f.cfg.DropSyncRate {
		f.dropped++
		return true
	}
	return false
}

// MkdirAll implements FS (not a boundary: the store calls it once at open).
func (f *Fault) MkdirAll(dir string) error { return f.mem.MkdirAll(dir) }

// Create implements FS.
func (f *Fault) Create(name string) (File, error) {
	if err := f.boundary(); err != nil {
		return nil, err
	}
	h, err := f.mem.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: h}, nil
}

// OpenAppend implements FS.
func (f *Fault) OpenAppend(name string) (File, error) {
	if err := f.boundary(); err != nil {
		return nil, err
	}
	h, err := f.mem.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: h}, nil
}

// Open implements FS (reads are not boundaries).
func (f *Fault) Open(name string) (File, error) {
	h, err := f.mem.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: h}, nil
}

// ReadDir implements FS.
func (f *Fault) ReadDir(dir string) ([]string, error) { return f.mem.ReadDir(dir) }

// Rename implements FS.
func (f *Fault) Rename(oldName, newName string) error {
	if err := f.boundary(); err != nil {
		return err
	}
	return f.mem.Rename(oldName, newName)
}

// Remove implements FS.
func (f *Fault) Remove(name string) error {
	if err := f.boundary(); err != nil {
		return err
	}
	return f.mem.Remove(name)
}

// Truncate implements FS.
func (f *Fault) Truncate(name string, size int64) error {
	if err := f.boundary(); err != nil {
		return err
	}
	return f.mem.Truncate(name, size)
}

// SyncDir implements FS.
func (f *Fault) SyncDir(dir string) error {
	if err := f.boundary(); err != nil {
		return err
	}
	if f.dropSync() {
		return nil
	}
	return f.mem.SyncDir(dir)
}

type faultFile struct {
	f     *Fault
	inner File
}

// Write applies the bytes to the volatile state first and then checks the
// boundary, so a cut at a write boundary leaves a torn write behind.
func (h *faultFile) Write(p []byte) (int, error) {
	n, err := h.inner.Write(p)
	if err != nil {
		return n, err
	}
	if err := h.f.boundary(); err != nil {
		return 0, err
	}
	return n, nil
}

// Sync checks the boundary before taking effect: a cut at a sync boundary
// means the sync never happened.
func (h *faultFile) Sync() error {
	if err := h.f.boundary(); err != nil {
		return err
	}
	if h.f.dropSync() {
		return nil
	}
	return h.inner.Sync()
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) { return h.inner.ReadAt(p, off) }
func (h *faultFile) Size() (int64, error)                    { return h.inner.Size() }
func (h *faultFile) Close() error                            { return h.inner.Close() }
