package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"testing"
)

func TestIsNoSpace(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrNoSpace, true},
		{fmt.Errorf("wrap: %w", ErrNoSpace), true},
		{syscall.ENOSPC, true},
		{fmt.Errorf("os layer: %w", syscall.ENOSPC), true},
		{ErrPowerCut, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsNoSpace(c.err); got != c.want {
			t.Errorf("IsNoSpace(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// A write that does not fit writes what fits and fails: real ENOSPC is a
// partial write, not an atomic rejection.
func TestMemPartialWriteAtCapacity(t *testing.T) {
	m := NewMem(1)
	m.SetCapacity(10)
	f, err := m.Create("seg")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("abcdef")) // 6 of 10
	n, err := f.Write([]byte("ghijklmn"))
	if !IsNoSpace(err) {
		t.Fatalf("over-capacity write: err = %v, want ErrNoSpace", err)
	}
	if n != 4 {
		t.Fatalf("over-capacity write: n = %d, want 4 (the bytes that fit)", n)
	}
	if got := m.Used(); got != 10 {
		t.Fatalf("Used() = %d, want 10 (device exactly full)", got)
	}
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if sz != 10 {
		t.Fatalf("Size() = %d, want 10", sz)
	}
	// The partial fragment landed in volatile state: it reads back.
	got := readAll(t, m, "seg")
	if !bytes.Equal(got, []byte("abcdefghij")) {
		t.Fatalf("content = %q, want %q", got, "abcdefghij")
	}
}

// Satellite: a write failing at byte N leaves exactly the synced prefix
// durable after a crash-reopen. The unsynced fragment may or may not survive
// the tear (that is the Mem's crash model), but the synced prefix always
// does, byte for byte, and nothing past fragment-end ever appears. Swept
// across seeds so every tear outcome (lost, torn, kept) is exercised.
func TestMemPartialWriteSyncedPrefixDurable(t *testing.T) {
	const (
		synced   = "durable-prefix!" // 15 bytes, synced before the failing write
		fragment = "lost+found"      // 10 bytes attempted, 5 fit
		capacity = 20
	)
	sawExact, sawTorn := false, false
	for seed := int64(0); seed < 32; seed++ {
		m := NewMem(seed)
		m.SetCapacity(capacity)
		f, err := m.Create("seg")
		if err != nil {
			t.Fatal(err)
		}
		writeAll(t, f, []byte(synced))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := m.SyncDir("."); err != nil {
			t.Fatal(err)
		}
		n, err := f.Write([]byte(fragment))
		if !IsNoSpace(err) || n != capacity-len(synced) {
			t.Fatalf("seed %d: failing write: n=%d err=%v, want n=%d ErrNoSpace",
				seed, n, err, capacity-len(synced))
		}
		m.Crash()
		got := readAll(t, m, "seg")
		if len(got) < len(synced) || len(got) > capacity {
			t.Fatalf("seed %d: survived %d bytes, want in [%d,%d]", seed, len(got), len(synced), capacity)
		}
		if !bytes.Equal(got[:len(synced)], []byte(synced)) {
			t.Fatalf("seed %d: synced prefix damaged: %q", seed, got[:len(synced)])
		}
		switch {
		case len(got) == len(synced):
			sawExact = true
		default:
			sawTorn = true
		}
	}
	if !sawExact || !sawTorn {
		t.Fatalf("seed sweep did not cover both tear outcomes: exact=%v torn=%v", sawExact, sawTorn)
	}
}

// A full device rejects new files outright — there is no room for even the
// first byte — while opening an existing file for append still works (the
// failure belongs to the write, not the open).
func TestMemCreateFailsWhenFull(t *testing.T) {
	m := NewMem(1)
	m.SetCapacity(4)
	f, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("full"))
	if _, err := m.Create("b"); !IsNoSpace(err) {
		t.Fatalf("Create on full device: err = %v, want ErrNoSpace", err)
	}
	if _, err := m.OpenAppend("c"); !IsNoSpace(err) {
		t.Fatalf("OpenAppend(new) on full device: err = %v, want ErrNoSpace", err)
	}
	if _, err := m.OpenAppend("a"); err != nil {
		t.Fatalf("OpenAppend(existing) on full device: err = %v, want nil", err)
	}
}

// Delayed-allocation ENOSPC: bytes buffered while space existed can fail to
// allocate at fsync once external pressure pushes the device over capacity.
// Freeing space makes the same sync succeed.
func TestMemSyncFailsUnderExternalPressure(t *testing.T) {
	m := NewMem(1)
	m.SetCapacity(10)
	f, err := m.Create("seg")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("buffered")) // 8 of 10, unsynced
	m.AddExternalUsage(5)              // 13 > 10: over capacity
	if err := f.Sync(); !IsNoSpace(err) {
		t.Fatalf("Sync over capacity with dirty bytes: err = %v, want ErrNoSpace", err)
	}
	m.AddExternalUsage(-5) // pressure released
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync after space freed: err = %v", err)
	}
	// Fully-synced files don't re-allocate: sync stays cheap even when the
	// device is over capacity again.
	m.AddExternalUsage(100)
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync of clean file over capacity: err = %v", err)
	}
}

func TestMemExternalUsageClamps(t *testing.T) {
	m := NewMem(1)
	f, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("1234"))
	m.AddExternalUsage(-1000) // cannot free more than external holds
	if got := m.Used(); got != 4 {
		t.Fatalf("Used() = %d, want 4 (external clamped at zero)", got)
	}
}

// FailNoSpaceNext pins an ENOSPC to one exact call site per eligible
// operation class: write (no byte lands), sync (nothing becomes durable),
// create, and close (the deferred allocation failure).
func TestFaultFailNoSpaceNext(t *testing.T) {
	flt := NewFault(FaultConfig{Seed: 7})
	f, err := flt.Create("seg")
	if err != nil {
		t.Fatal(err)
	}

	flt.FailNoSpaceNext(1)
	n, err := f.Write([]byte("doomed"))
	if !IsNoSpace(err) || n != 0 {
		t.Fatalf("injected write: n=%d err=%v, want 0 bytes + ErrNoSpace", n, err)
	}
	if sz, _ := f.Size(); sz != 0 {
		t.Fatalf("injected write applied %d bytes; must apply none", sz)
	}
	writeAll(t, f, []byte("ok")) // injection consumed: next write lands

	flt.FailNoSpaceNext(1)
	if err := f.Sync(); !IsNoSpace(err) {
		t.Fatalf("injected sync: err = %v, want ErrNoSpace", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	flt.FailNoSpaceNext(1)
	if _, err := flt.Create("other"); !IsNoSpace(err) {
		t.Fatalf("injected create: err = %v, want ErrNoSpace", err)
	}

	flt.FailNoSpaceNext(1)
	if err := f.Close(); !IsNoSpace(err) {
		t.Fatalf("injected close: err = %v, want ErrNoSpace", err)
	}

	if got := flt.NoSpaceHits(); got != 4 {
		t.Fatalf("NoSpaceHits() = %d, want 4", got)
	}
}

// DiskFillPerOp models a device other tenants are filling: every mutation
// boundary shrinks free space, so the store's own writes eventually hit an
// organic ENOSPC — and recover once the pressure is released.
func TestFaultDiskFillPerOp(t *testing.T) {
	flt := NewFault(FaultConfig{Seed: 3, DiskCapacity: 256, DiskFillPerOp: 32})
	f, err := flt.Create("seg")
	if err != nil {
		t.Fatal(err)
	}
	var hit error
	for i := 0; i < 64 && hit == nil; i++ {
		if _, err := f.Write([]byte("eight by")); err != nil {
			hit = err
		}
	}
	if !IsNoSpace(hit) {
		t.Fatalf("filling device never hit ENOSPC: err = %v", hit)
	}
	if flt.NoSpaceHits() != 0 {
		t.Fatalf("organic capacity failures must not count as injected hits, got %d", flt.NoSpaceHits())
	}
	flt.Mem().AddExternalUsage(-1024) // the other tenant frees its bytes
	if _, err := f.Write([]byte("breathes")); err != nil {
		t.Fatalf("write after pressure released: %v", err)
	}
}

// Transient ENOSPC at a fixed rate replays identically for a fixed seed.
func TestFaultNoSpaceRateDeterministic(t *testing.T) {
	run := func(seed int64) (pattern []bool, hits int64) {
		flt := NewFault(FaultConfig{Seed: seed, NoSpaceRate: 0.3})
		// OpenAppend is not an injection point, so the handle always opens
		// and the 50-op write pattern below stays aligned across runs.
		f, err := flt.OpenAppend("seg")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			_, werr := f.Write([]byte("x"))
			pattern = append(pattern, IsNoSpace(werr))
			if werr != nil && !IsNoSpace(werr) {
				t.Fatalf("op %d: unexpected error %v", i, werr)
			}
		}
		return pattern, flt.NoSpaceHits()
	}
	p1, h1 := run(11)
	p2, h2 := run(11)
	if h1 == 0 || h1 == 50 {
		t.Fatalf("rate 0.3 over 50 ops hit %d times; schedule degenerate", h1)
	}
	if h1 != h2 {
		t.Fatalf("same seed, different hit counts: %d vs %d", h1, h2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed, schedules diverge at op %d", i)
		}
	}
	if _, h3 := run(12); h3 == h1 {
		// Not impossible, but with 50 ops at 0.3 two seeds agreeing on the
		// exact count is worth a second look; require the patterns differ.
		p3, _ := run(12)
		same := true
		for i := range p1 {
			if p1[i] != p3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds replay the same ENOSPC schedule")
		}
	}
}

// errors.Is works through every wrapped form the Mem and Fault produce.
func TestNoSpaceErrorsUnwrap(t *testing.T) {
	m := NewMem(1)
	m.SetCapacity(1)
	f, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	_, werr := f.Write([]byte("xx"))
	if !errors.Is(werr, ErrNoSpace) {
		t.Fatalf("partial write error does not unwrap to ErrNoSpace: %v", werr)
	}
	if _, cerr := m.Create("b"); !errors.Is(cerr, ErrNoSpace) {
		t.Fatalf("create error does not unwrap to ErrNoSpace: %v", cerr)
	}
}
