package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"stir/internal/obs"
	"stir/internal/storage/vfs"
)

func TestBatchCommitAndGet(t *testing.T) {
	s, _ := openTemp(t, Options{})
	b := s.NewBatch()
	b.Put("user/1", []byte("alice")).
		Put("tweet/1", []byte("hello")).
		Put("tweet/2", []byte("world"))
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"user/1": "alice", "tweet/1": "hello", "tweet/2": "world"} {
		got, err := s.Get(k)
		if err != nil || string(got) != want {
			t.Fatalf("Get(%s) = %q, %v", k, got, err)
		}
	}
	// Batch is reusable after commit.
	if b.Len() != 0 {
		t.Fatal("batch not reset after commit")
	}
	if err := b.Put("extra", []byte("x")).Commit(); err != nil {
		t.Fatal(err)
	}
	if !s.Has("extra") {
		t.Fatal("reused batch did not apply")
	}
}

func TestBatchDeleteAndOverwrite(t *testing.T) {
	s, _ := openTemp(t, Options{})
	s.Put("a", []byte("old"))
	s.Put("b", []byte("keep"))
	if err := s.NewBatch().Put("a", []byte("new")).Delete("b").Put("c", []byte("made")).Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("a"); string(v) != "new" {
		t.Fatalf("a = %q", v)
	}
	if _, err := s.Get("b"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("b err = %v", err)
	}
	if v, _ := s.Get("c"); string(v) != "made" {
		t.Fatalf("c = %q", v)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestBatchSameKeyLastWins(t *testing.T) {
	s, _ := openTemp(t, Options{})
	if err := s.NewBatch().Put("k", []byte("first")).Put("k", []byte("second")).Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); string(v) != "second" {
		t.Fatalf("k = %q", v)
	}
}

func TestBatchEmptyAndValidation(t *testing.T) {
	s, _ := openTemp(t, Options{})
	if err := s.NewBatch().Commit(); err != nil {
		t.Fatalf("empty commit = %v", err)
	}
	if err := s.NewBatch().Put("", []byte("x")).Commit(); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key err = %v", err)
	}
	s.Close()
	if err := s.NewBatch().Put("k", nil).Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed commit err = %v", err)
	}
}

func TestBatchSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.NewBatch().
		Put("user/9", []byte("u")).
		Put("tweet/90", []byte("t1")).
		Put("tweet/91", []byte("t2")).
		Delete("tweet/90").
		Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len after reopen = %d, want 2", s2.Len())
	}
	if v, err := s2.Get("tweet/91"); err != nil || string(v) != "t2" {
		t.Fatalf("tweet/91 = %q, %v", v, err)
	}
	if _, err := s2.Get("tweet/90"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("deleted-in-batch key err = %v", err)
	}
}

// TestBatchAtomicUnderTornWrite verifies all-or-nothing semantics: chop the
// batch record mid-way and none of its operations survive a reopen.
func TestBatchAtomicUnderTornWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("before", []byte("safe"))
	if err := s.NewBatch().
		Put("batch/a", []byte("aaaa")).
		Put("batch/b", []byte("bbbb")).
		Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Truncate inside the batch record (drop the last 5 bytes).
	path := dir + "/seg-000001.log"
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("before"); err != nil {
		t.Fatalf("pre-batch record lost: %v", err)
	}
	for _, k := range []string{"batch/a", "batch/b"} {
		if _, err := s2.Get(k); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("torn batch partially applied: %s err = %v", k, err)
		}
	}
}

func TestBatchThenCompact(t *testing.T) {
	s, _ := openTemp(t, Options{})
	for i := 0; i < 20; i++ {
		b := s.NewBatch()
		for j := 0; j < 5; j++ {
			b.Put(fmt.Sprintf("k%d", j), []byte(fmt.Sprintf("gen%d", i)))
		}
		if err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	for j := 0; j < 5; j++ {
		v, err := s.Get(fmt.Sprintf("k%d", j))
		if err != nil || string(v) != "gen19" {
			t.Fatalf("k%d = %q, %v", j, v, err)
		}
	}
}

// Model property: interleaved plain ops and batches agree with a map, across
// reopen.
func TestBatchModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "batchprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		s, err := Open(dir, Options{MaxSegmentBytes: 400})
		if err != nil {
			return false
		}
		model := map[string]string{}
		keys := []string{"a", "b", "c", "d"}
		for op := 0; op < 80; op++ {
			switch r.Intn(3) {
			case 0:
				k := keys[r.Intn(len(keys))]
				v := fmt.Sprintf("v%d", r.Int())
				if s.Put(k, []byte(v)) != nil {
					return false
				}
				model[k] = v
			case 1:
				k := keys[r.Intn(len(keys))]
				if s.Delete(k) != nil {
					return false
				}
				delete(model, k)
			case 2:
				b := s.NewBatch()
				n := 1 + r.Intn(4)
				for i := 0; i < n; i++ {
					k := keys[r.Intn(len(keys))]
					if r.Intn(4) == 0 {
						b.Delete(k)
						delete(model, k)
					} else {
						v := fmt.Sprintf("b%d", r.Int())
						b.Put(k, []byte(v))
						model[k] = v
					}
				}
				if b.Commit() != nil {
					return false
				}
			}
		}
		check := func(st *Store) bool {
			if st.Len() != len(model) {
				return false
			}
			for k, v := range model {
				got, err := st.Get(k)
				if err != nil || string(got) != v {
					return false
				}
			}
			return true
		}
		if !check(s) {
			return false
		}
		s.Close()
		s2, err := Open(dir, Options{MaxSegmentBytes: 400})
		if err != nil {
			return false
		}
		defer s2.Close()
		return check(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchAtomicUnderInjectedCrash sweeps a power cut across every mutation
// boundary of a batch-heavy workload — so the cut lands inside batch record
// writes, the syncs that ack them, and the segment machinery around them —
// and checks after each reboot that every batch applied all-or-nothing, and
// that every batch acked by a successful Sync survived whole.
func TestBatchAtomicUnderInjectedCrash(t *testing.T) {
	const (
		seed     = 99
		nBatches = 12
	)
	const dir = "store"
	// run drives the batches, returning how many were acked (Commit+Sync both
	// succeeded) before err stopped it.
	run := func(fsys *vfs.Fault) (acked int, err error) {
		s, err := Open(dir, Options{FS: fsys, Metrics: obs.Discard})
		if err != nil {
			return 0, err
		}
		for i := 0; i < nBatches; i++ {
			b := s.NewBatch().
				Put(fmt.Sprintf("b%02d/x", i), []byte(fmt.Sprintf("x%d", i))).
				Put(fmt.Sprintf("b%02d/y", i), []byte(fmt.Sprintf("y%d", i))).
				Put(fmt.Sprintf("b%02d/z", i), []byte(fmt.Sprintf("z%d", i)))
			if i%3 == 0 && i > 0 {
				// Some batches also retract the previous batch's z key, so
				// tombstones ride inside batch records too.
				b.Delete(fmt.Sprintf("b%02d/z", i-1))
			}
			if err := b.Commit(); err != nil {
				return acked, err
			}
			if err := s.Sync(); err != nil {
				return acked, err
			}
			acked++
		}
		return acked, s.Close()
	}

	// Fault-free pass counts the boundaries to sweep.
	flt := vfs.NewFault(vfs.FaultConfig{Seed: seed})
	if _, err := run(flt); err != nil {
		t.Fatal(err)
	}
	total := flt.Boundaries()

	for k := int64(1); k <= total; k++ {
		flt := vfs.NewFault(vfs.FaultConfig{Seed: seed, CrashAt: k})
		acked, err := run(flt)
		if err != nil && !errors.Is(err, vfs.ErrPowerCut) {
			t.Fatalf("boundary %d: %v", k, err)
		}
		flt.Restart()
		s2, err := Open(dir, Options{FS: flt, Metrics: obs.Discard})
		if err != nil {
			t.Fatalf("boundary %d: reopen: %v", k, err)
		}
		for i := 0; i < nBatches; i++ {
			present := 0
			for _, suffix := range []string{"x", "y", "z"} {
				key := fmt.Sprintf("b%02d/%s", i, suffix)
				v, gerr := s2.Get(key)
				if gerr == nil {
					if string(v) != fmt.Sprintf("%s%d", suffix, i) {
						t.Fatalf("boundary %d: %s = %q", k, key, v)
					}
					present++
				} else if !errors.Is(gerr, ErrKeyNotFound) {
					t.Fatalf("boundary %d: %s: %v", k, key, gerr)
				}
			}
			// All-or-nothing, modulo the follow-up batch deleting this
			// batch's z key: 3 (whole), 2 (whole minus retracted z), 0.
			zRetractable := (i+1)%3 == 0 && i+1 < nBatches
			if present == 1 || (present == 2 && !zRetractable) {
				t.Fatalf("boundary %d: batch %d partially applied (%d of 3 keys)", k, i, present)
			}
			if i < acked && present == 0 {
				t.Fatalf("boundary %d: acked batch %d lost", k, i)
			}
		}
		s2.Close()
	}
	t.Logf("seed %d: %d batches swept across %d crash boundaries", seed, nBatches, total)
}
