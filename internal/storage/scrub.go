package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
)

// Scrub and salvage: the machinery that turns "a damaged log" from a fatal
// condition into an accounted-for one. Open uses it to classify damage —
// a torn tail (crash mid-append, truncated away) versus a mid-segment
// corrupt range (media damage, skipped with everything after it salvaged).
// Scrub re-verifies every byte of every segment online, and Repair rewrites
// damaged segments, moving the bad ranges into a quarantine directory so
// nothing is silently thrown away.

// quarantineDir is the subdirectory (under the store dir) that Repair moves
// damaged byte ranges into.
const quarantineDir = "quarantine"

// CorruptRange is one damaged byte range found in a segment.
type CorruptRange struct {
	Segment int
	Off     int64
	Len     int64
	Reason  string
}

// ScrubReport summarises a scan of the on-disk log.
type ScrubReport struct {
	// Segments and Records count what was scanned and parsed clean.
	Segments int
	Records  int
	// Salvaged counts valid records recovered from beyond a corrupt range —
	// records a truncate-at-first-error recovery would have discarded.
	Salvaged int
	// TornTails counts segments that ended in a truncated record (the
	// normal crash artifact; Open chops these off).
	TornTails int
	TornBytes int64
	// CorruptRanges lists mid-segment damage still present on disk; Repair
	// quarantines it.
	CorruptRanges []CorruptRange
	CorruptBytes  int64
}

func (r *ScrubReport) addCorrupt(seg int, off, n int64, reason string) {
	r.CorruptRanges = append(r.CorruptRanges, CorruptRange{Segment: seg, Off: off, Len: n, Reason: reason})
	r.CorruptBytes += n
}

// Clean reports whether the scan found no corrupt ranges. Torn tails do not
// count: they are expected after a crash and are repaired by truncation the
// moment Open sees them.
func (r *ScrubReport) Clean() bool { return len(r.CorruptRanges) == 0 }

// String renders a one-line summary for CLI output.
func (r *ScrubReport) String() string {
	return fmt.Sprintf("%d segments, %d records, %d salvaged, %d torn tails (%d bytes), %d corrupt ranges (%d bytes)",
		r.Segments, r.Records, r.Salvaged, r.TornTails, r.TornBytes, len(r.CorruptRanges), r.CorruptBytes)
}

// ScrubReport returns what Open found (and salvaged) while loading the log.
func (s *Store) ScrubReport() ScrubReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scrub
}

func corruptReason(err error) string {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return "short record"
	}
	return err.Error()
}

// resyncRecord scans forward from `from` for the next offset at which a
// whole record parses with a valid CRC, returning (offset, true) or
// (0, false) when nothing valid remains. The CRC makes a false resync
// astronomically unlikely. The remainder of the segment is buffered in
// memory; segments are bounded by MaxSegmentBytes and corruption is rare,
// so the simplicity wins over a streaming scan.
func resyncRecord(f io.ReaderAt, from, size int64) (int64, bool, error) {
	if from >= size {
		return 0, false, nil
	}
	buf := make([]byte, size-from)
	if n, err := f.ReadAt(buf, from); err != nil && (err != io.EOF || int64(n) < size-from) {
		return 0, false, fmt.Errorf("storage: resync read: %w", err)
	}
	for pos := 0; pos+recordHeaderSize <= len(buf); pos++ {
		crc := binary.LittleEndian.Uint32(buf[pos : pos+4])
		keyLen := binary.LittleEndian.Uint32(buf[pos+5 : pos+9])
		valLen := binary.LittleEndian.Uint32(buf[pos+9 : pos+13])
		if keyLen > 1<<20 || valLen > 1<<28 {
			continue
		}
		total := recordHeaderSize + int(keyLen) + int(valLen)
		if pos+total > len(buf) {
			continue
		}
		if crc32.ChecksumIEEE(buf[pos+4:pos+total]) == crc {
			return from + int64(pos), true, nil
		}
	}
	return 0, false, nil
}

// scanSegment verifies every byte of one open segment, appending damage to
// rep. Unlike the load-time scan it treats an unparsable tail as a corrupt
// range too: after Open has run, the log should parse clean to the end.
func scanSegment(f io.ReaderAt, id int, size int64, rep *ScrubReport) error {
	rep.Segments++
	var off int64
	salvaging := false
	for off < size {
		_, val, flags, n, err := readRecord(f, off)
		if err == io.EOF {
			break
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt) {
			next, found, serr := resyncRecord(f, off+1, size)
			if serr != nil {
				return serr
			}
			if !found {
				rep.addCorrupt(id, off, size-off, corruptReason(err))
				return nil
			}
			rep.addCorrupt(id, off, next-off, corruptReason(err))
			salvaging = true
			off = next
			continue
		}
		if err != nil {
			return err
		}
		if flags&flagBatch != 0 {
			if _, derr := decodeBatchPayload(val); derr != nil {
				rep.addCorrupt(id, off, n, "undecodable batch payload")
				salvaging = true
				off += n
				continue
			}
		}
		rep.Records++
		if salvaging {
			rep.Salvaged++
		}
		off += n
	}
	return nil
}

// Scrub re-reads and CRC-verifies every record of every segment without
// modifying anything, and reports what it found. It runs online: readers
// are unaffected and writers are only paused for the duration of the scan.
func (s *Store) Scrub() (ScrubReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ScrubReport{}, ErrClosed
	}
	s.mScrubs.Inc()
	var rep ScrubReport
	for _, id := range s.segIDsLocked() {
		f := s.segs[id]
		size, err := f.Size()
		if err != nil {
			return rep, err
		}
		if err := scanSegment(f, id, size, &rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

func (s *Store) segIDsLocked() []int {
	ids := make([]int, 0, len(s.segs))
	for id := range s.segs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// RepairReport summarises a Repair pass.
type RepairReport struct {
	// RewrittenSegments is how many damaged segments were rewritten.
	RewrittenSegments int
	// QuarantinedRanges and QuarantinedBytes count the damage moved into
	// the quarantine directory.
	QuarantinedRanges int
	QuarantinedBytes  int64
	// QuarantineFiles lists the files the damage was preserved in.
	QuarantineFiles []string
}

// Repair rewrites every damaged segment with only its valid records,
// preserving the damaged byte ranges as files under <dir>/quarantine/
// instead of discarding them, then rebuilds the index. Each rewrite commits
// via temp-file+rename+dir-fsync, so a crash mid-repair loses nothing.
// After a successful Repair, Scrub reports clean.
func (s *Store) Repair() (RepairReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep RepairReport
	if s.closed {
		return rep, ErrClosed
	}
	var scan ScrubReport
	for _, id := range s.segIDsLocked() {
		f := s.segs[id]
		size, err := f.Size()
		if err != nil {
			return rep, err
		}
		var segScan ScrubReport
		if err := scanSegment(f, id, size, &segScan); err != nil {
			return rep, err
		}
		scan.CorruptRanges = append(scan.CorruptRanges, segScan.CorruptRanges...)
	}
	if len(scan.CorruptRanges) == 0 {
		return rep, nil
	}
	s.mRepairs.Inc()
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := s.fs.MkdirAll(qdir); err != nil {
		return rep, err
	}
	bySeg := make(map[int][]CorruptRange)
	for _, cr := range scan.CorruptRanges {
		bySeg[cr.Segment] = append(bySeg[cr.Segment], cr)
	}
	for id, ranges := range bySeg {
		f := s.segs[id]
		size, err := f.Size()
		if err != nil {
			return rep, err
		}
		data := make([]byte, size)
		if n, err := f.ReadAt(data, 0); err != nil && (err != io.EOF || int64(n) < size) {
			return rep, err
		}
		// Quarantine each damaged range before rewriting the segment, so
		// even a crash between the two leaves the bytes preserved.
		for _, cr := range ranges {
			qpath := filepath.Join(qdir, fmt.Sprintf("seg-%06d-%d.bad", id, cr.Off))
			qf, err := s.fs.Create(qpath)
			if err != nil {
				return rep, err
			}
			if _, err := qf.Write(data[cr.Off : cr.Off+cr.Len]); err != nil {
				qf.Close()
				return rep, err
			}
			if err := qf.Sync(); err != nil {
				qf.Close()
				return rep, err
			}
			if err := qf.Close(); err != nil {
				return rep, err
			}
			rep.QuarantineFiles = append(rep.QuarantineFiles, qpath)
			rep.QuarantinedRanges++
			rep.QuarantinedBytes += cr.Len
			s.mQuarantined.Inc()
		}
		if err := s.fs.SyncDir(qdir); err != nil {
			return rep, err
		}
		// Rewrite the segment without the damaged ranges, keeping the valid
		// records in their original order.
		segPath := s.segPath(id)
		tmpPath := segPath + tmpSuffix
		tf, err := s.fs.Create(tmpPath)
		if err != nil {
			return rep, err
		}
		var off int64
		for _, cr := range ranges {
			if cr.Off > off {
				if _, err := tf.Write(data[off:cr.Off]); err != nil {
					tf.Close()
					s.fs.Remove(tmpPath)
					return rep, err
				}
			}
			off = cr.Off + cr.Len
		}
		if off < size {
			if _, err := tf.Write(data[off:]); err != nil {
				tf.Close()
				s.fs.Remove(tmpPath)
				return rep, err
			}
		}
		if err := tf.Sync(); err != nil {
			tf.Close()
			s.fs.Remove(tmpPath)
			return rep, err
		}
		if err := tf.Close(); err != nil {
			s.fs.Remove(tmpPath)
			return rep, err
		}
		if err := s.fs.Rename(tmpPath, segPath); err != nil {
			s.fs.Remove(tmpPath)
			return rep, err
		}
		if err := s.fs.SyncDir(s.dir); err != nil {
			return rep, err
		}
		rep.RewrittenSegments++
	}
	sort.Strings(rep.QuarantineFiles)
	// Record offsets moved: rebuild the whole in-memory state from disk.
	return rep, s.reloadLocked()
}

// reloadLocked closes every handle and rebuilds index and active segment
// from the on-disk state. Put/dead/compaction counters survive; the scrub
// report is replaced by what the reload finds.
func (s *Store) reloadLocked() error {
	s.closeAllLocked()
	s.index = make(map[string]recordPos)
	s.dead = 0
	s.scrub = ScrubReport{}
	return s.loadAllLocked()
}
