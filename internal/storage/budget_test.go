package storage

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"stir/internal/leaktest"
	"stir/internal/obs"
	"stir/internal/storage/vfs"
)

// Disk-budget suite (DESIGN.md §16): soft watermark fires emergency
// compaction, hard watermark flips the store read-only, ENOSPC degrades like
// a budget trip, and compaction heals. Reads, scrubs and snapshots must keep
// working the whole way through.

func openMemStore(t *testing.T, reg *obs.Registry, opts Options) (*Store, *vfs.Mem) {
	t.Helper()
	mem := vfs.NewMem(1)
	opts.FS = mem
	opts.Metrics = reg
	s, err := Open("ckpt", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, mem
}

// waitFor polls cond for up to two seconds — long enough for the background
// emergency compaction goroutine, short enough to keep the suite fast.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// Crossing the soft watermark fires the alert counter and an emergency
// compaction that brings the footprint back down; writes never stop.
func TestSoftWatermarkEmergencyCompaction(t *testing.T) {
	leaktest.Check(t)
	reg := obs.NewRegistry()
	s, _ := openMemStore(t, reg, Options{Budget: Budget{SoftBytes: 4096}})

	val := bytes.Repeat([]byte("v"), 100)
	// Overwriting the same ten keys builds dead weight, so once the soft
	// watermark trips there is something for the compaction to reclaim.
	for i := 0; s.Stats().DiskBytes < 4096; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%10), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if i > 10_000 {
			t.Fatal("never reached the soft watermark")
		}
	}
	if got := reg.Counter("storage_disk_soft_trips_total").Value(); got < 1 {
		t.Fatalf("storage_disk_soft_trips_total = %v, want >= 1", got)
	}
	waitFor(t, "emergency compaction to reclaim dead bytes", func() bool {
		return s.Stats().DiskBytes < 4096
	})
	if got := reg.Counter("storage_disk_emergency_compactions_total").Value(); got < 1 {
		t.Fatalf("storage_disk_emergency_compactions_total = %v, want >= 1", got)
	}
	if s.Degraded() {
		t.Fatal("soft watermark must not degrade the store")
	}
	if err := s.Put("after", val); err != nil {
		t.Fatalf("put after soft trip: %v", err)
	}
}

// Crossing the hard watermark with nothing to reclaim (every record live)
// flips the store read-only: mutations get the typed ErrReadOnly while
// queries, scrubs and snapshots keep serving.
func TestHardWatermarkReadOnly(t *testing.T) {
	leaktest.Check(t)
	reg := obs.NewRegistry()
	s, _ := openMemStore(t, reg, Options{Budget: Budget{HardBytes: 2048}})

	val := bytes.Repeat([]byte("v"), 64)
	var rejected error
	for i := 0; i < 10_000; i++ {
		if err := s.Put(fmt.Sprintf("live-%d", i), val); err != nil {
			rejected = err
			break
		}
	}
	if !errors.Is(rejected, ErrReadOnly) {
		t.Fatalf("write past hard watermark: err = %v, want ErrReadOnly", rejected)
	}
	if !s.Degraded() || !s.Stats().Degraded {
		t.Fatal("store must report degraded")
	}
	if got := reg.Gauge("storage_disk_degraded").Value(); got != 1 {
		t.Fatalf("storage_disk_degraded = %v, want 1", got)
	}
	if got := reg.Counter("storage_disk_hard_trips_total").Value(); got < 1 {
		t.Fatalf("storage_disk_hard_trips_total = %v, want >= 1", got)
	}

	// The degraded contract: reads and maintenance serve, mutations don't.
	if v, err := s.Get("live-0"); err != nil || !bytes.Equal(v, val) {
		t.Fatalf("degraded Get: %q, %v", v, err)
	}
	if err := s.Delete("live-0"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("degraded Delete: err = %v, want ErrReadOnly", err)
	}
	if err := s.NewBatch().Put("b", val).Commit(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("degraded Batch.Commit: err = %v, want ErrReadOnly", err)
	}
	if rep, err := s.Scrub(); err != nil || !rep.Clean() {
		t.Fatalf("degraded Scrub: %+v, %v", rep, err)
	}
	var buf bytes.Buffer
	if rep, err := s.Snapshot(&buf); err != nil || rep.Records == 0 {
		t.Fatalf("degraded Snapshot: %+v, %v", rep, err)
	}
	// All records are live: compaction frees nothing, recovery honestly fails.
	if err := s.TryRecover(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("TryRecover with zero reclaimable: err = %v, want ErrReadOnly", err)
	}
}

// A hard trip with dead weight heals itself: the trip kicks the emergency
// compaction, the compaction frees the dead bytes, and the store comes back
// writable with the recovery counter ticked.
func TestHardTripHealsViaCompaction(t *testing.T) {
	leaktest.Check(t)
	reg := obs.NewRegistry()
	s, _ := openMemStore(t, reg, Options{Budget: Budget{HardBytes: 8192}})

	val := bytes.Repeat([]byte("v"), 512)
	sawReadOnly := false
	for i := 0; i < 100_000; i++ {
		err := s.Put("hot", val) // every overwrite deadens the previous record
		if errors.Is(err, ErrReadOnly) {
			sawReadOnly = true
			break
		}
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if !sawReadOnly {
		t.Fatal("never observed ErrReadOnly (heal won every race?)")
	}
	waitFor(t, "compaction to heal the store", func() bool { return !s.Degraded() })
	if got := reg.Counter("storage_disk_recovered_total").Value(); got < 1 {
		t.Fatalf("storage_disk_recovered_total = %v, want >= 1", got)
	}
	if got := reg.Gauge("storage_disk_degraded").Value(); got != 0 {
		t.Fatalf("storage_disk_degraded = %v, want 0 after heal", got)
	}
	if err := s.Put("hot", []byte("post-heal")); err != nil {
		t.Fatalf("put after heal: %v", err)
	}
	if v, err := s.Get("hot"); err != nil || string(v) != "post-heal" {
		t.Fatalf("get after heal: %q, %v", v, err)
	}
}

// An organic ENOSPC mid-append leaves the store exactly as recoverable as a
// power cut: the torn fragment is chopped, reads keep serving, and once
// space returns TryRecover brings the store back writable.
func TestENOSPCMidAppendRecovers(t *testing.T) {
	leaktest.Check(t)
	reg := obs.NewRegistry()
	flt := vfs.NewFault(vfs.FaultConfig{Seed: 5, DiskCapacity: 2048})
	s, err := Open("ckpt", Options{FS: flt, Metrics: reg, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	val := bytes.Repeat([]byte("v"), 64)
	acked := 0
	var hit error
	for i := 0; i < 1000 && hit == nil; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil {
			hit = err
		} else {
			acked++
		}
	}
	if !errors.Is(hit, vfs.ErrNoSpace) {
		t.Fatalf("filling the device: err = %v, want ErrNoSpace", hit)
	}
	if !s.Degraded() {
		t.Fatal("ENOSPC must flip the store degraded")
	}
	if got := reg.Counter("storage_disk_enospc_total").Value(); got < 1 {
		t.Fatalf("storage_disk_enospc_total = %v, want >= 1", got)
	}
	if v, err := s.Get("k0"); err != nil || !bytes.Equal(v, val) {
		t.Fatalf("degraded Get: %q, %v", v, err)
	}
	if err := s.Put("rejected", val); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("degraded Put: err = %v, want ErrReadOnly", err)
	}

	flt.Mem().SetCapacity(0) // operator freed the device
	if err := s.TryRecover(); err != nil {
		t.Fatalf("TryRecover after space freed: %v", err)
	}
	if s.Degraded() {
		t.Fatal("store still degraded after successful recovery")
	}
	if err := s.Put("post-heal", val); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	for i := 0; i < acked; i++ {
		if v, err := s.Get(fmt.Sprintf("k%d", i)); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("acked k%d lost across ENOSPC: %q, %v", i, v, err)
		}
	}
}

// ENOSPC followed by a power cut, rebooted onto a freed device: the store
// reopens clean and every acked-synced record survives — disk exhaustion
// composes with the crash model instead of inventing a new failure mode.
func TestENOSPCThenCrashReopens(t *testing.T) {
	leaktest.Check(t)
	flt := vfs.NewFault(vfs.FaultConfig{Seed: 11, DiskCapacity: 2048})
	s, err := Open("ckpt", Options{FS: flt, Metrics: obs.Discard, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}

	val := bytes.Repeat([]byte("v"), 64)
	acked := 0
	for i := 0; i < 1000; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil {
			if !errors.Is(err, vfs.ErrNoSpace) {
				t.Fatalf("put %d: %v", i, err)
			}
			break
		}
		acked++
	}
	if acked == 0 || acked == 1000 {
		t.Fatalf("acked = %d; device never filled", acked)
	}

	flt.Mem().Crash()        // power cut on the full device
	flt.Mem().SetCapacity(0) // space freed before the reboot
	s2, err := Open("ckpt", Options{FS: flt, Metrics: obs.Discard})
	if err != nil {
		t.Fatalf("reopen after ENOSPC+crash: %v", err)
	}
	defer s2.Close()
	if s2.Degraded() {
		t.Fatal("reopened store must start healthy on a freed device")
	}
	for i := 0; i < acked; i++ {
		if v, err := s2.Get(fmt.Sprintf("k%d", i)); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("acked-synced k%d lost across ENOSPC+crash: %q, %v", i, v, err)
		}
	}
	if rep, err := s2.Scrub(); err != nil || !rep.Clean() {
		t.Fatalf("reopened store scrub: %+v, %v", rep, err)
	}
	if err := s2.Put("post-crash", val); err != nil {
		t.Fatalf("put after reopen: %v", err)
	}
}

// A segment roll whose fsync hits ENOSPC must surface the error from Put —
// not leave a silently unsynced segment behind — and degrade the store.
func TestRollSyncENOSPCSurfaces(t *testing.T) {
	leaktest.Check(t)
	reg := obs.NewRegistry()
	flt := vfs.NewFault(vfs.FaultConfig{Seed: 3})
	s, err := Open("ckpt", Options{FS: flt, Metrics: reg, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	val := bytes.Repeat([]byte("v"), 300) // one record overflows a segment
	if err := s.Put("first", val); err != nil {
		t.Fatal(err)
	}
	flt.FailNoSpaceNext(1) // lands on the roll's active.Sync
	err = s.Put("second", val)
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("rolling put with injected ENOSPC: err = %v, want ErrNoSpace", err)
	}
	if !s.Degraded() {
		t.Fatal("failed roll must degrade the store")
	}
	if err := s.TryRecover(); err != nil {
		t.Fatalf("TryRecover after transient ENOSPC: %v", err)
	}
	if err := s.Put("second", val); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	if v, err := s.Get("second"); err != nil || !bytes.Equal(v, val) {
		t.Fatalf("get after recovery: %q, %v", v, err)
	}
}

// failCloseFS wraps a vfs.FS and fails Close on selected handle classes —
// the regression harness for "is this Close error actually checked?". Before
// the audit, segment-roll and snapshot-restore paths dropped these on the
// floor.
type failCloseFS struct {
	vfs.FS
	mu        sync.Mutex
	failWrite bool // handles from Create/OpenAppend
	failRead  bool // handles from Open
	boom      error
}

var errCloseBoom = errors.New("injected close failure")

func (f *failCloseFS) arm(write, read bool) {
	f.mu.Lock()
	f.failWrite, f.failRead = write, read
	f.mu.Unlock()
}

func (f *failCloseFS) shouldFail(write bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if write {
		return f.failWrite
	}
	return f.failRead
}

func (f *failCloseFS) Create(name string) (vfs.File, error) {
	h, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &failCloseFile{File: h, fs: f, write: true}, nil
}

func (f *failCloseFS) OpenAppend(name string) (vfs.File, error) {
	h, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &failCloseFile{File: h, fs: f, write: true}, nil
}

func (f *failCloseFS) Open(name string) (vfs.File, error) {
	h, err := f.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &failCloseFile{File: h, fs: f}, nil
}

type failCloseFile struct {
	vfs.File
	fs    *failCloseFS
	write bool
}

func (h *failCloseFile) Close() error {
	err := h.File.Close()
	if h.fs.shouldFail(h.write) {
		return fmt.Errorf("close %s handle: %w", map[bool]string{true: "write", false: "read"}[h.write], errCloseBoom)
	}
	return err
}

// The roll's Close of the outgoing segment is checked: a failure surfaces
// from Put instead of leaving a handle in limbo.
func TestRollCloseErrorSurfaces(t *testing.T) {
	leaktest.Check(t)
	fcfs := &failCloseFS{FS: vfs.NewMem(1)}
	s, err := Open("ckpt", Options{FS: fcfs, Metrics: obs.Discard, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 300)
	if err := s.Put("first", val); err != nil {
		t.Fatal(err)
	}
	fcfs.arm(true, false)
	err = s.Put("second", val)
	fcfs.arm(false, false)
	if !errors.Is(err, errCloseBoom) {
		t.Fatalf("rolling put with failing close: err = %v, want errCloseBoom surfaced", err)
	}
	s.Close()
}

// RestoreSnapshot checks both closes on its temp segment: the write handle
// (delayed-allocation failures surface there) and the verify read handle. A
// failure aborts the restore and leaves no segment behind.
func TestRestoreSnapshotCloseErrorsSurface(t *testing.T) {
	leaktest.Check(t)
	src, _ := openMemStore(t, obs.NewRegistry(), Options{})
	for i := 0; i < 10; i++ {
		if err := src.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if _, err := src.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name        string
		write, read bool
	}{
		{"write-handle", true, false},
		{"read-handle", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fcfs := &failCloseFS{FS: vfs.NewMem(1)}
			fcfs.arm(tc.write, tc.read)
			_, err := RestoreSnapshot("restored", bytes.NewReader(snap.Bytes()), Options{FS: fcfs})
			fcfs.arm(false, false)
			if !errors.Is(err, errCloseBoom) {
				t.Fatalf("restore with failing %s close: err = %v, want errCloseBoom surfaced", tc.name, err)
			}
			if names, err := fcfs.ReadDir("restored"); err == nil {
				for _, n := range names {
					if strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".log") {
						t.Fatalf("aborted restore published segment %s", n)
					}
				}
			}
		})
	}
}

// Usage breaks the footprint down so `stir fsck -du` can show what a
// compaction would free — and a compaction zeroes the reclaimable bucket.
func TestUsageBreakdown(t *testing.T) {
	leaktest.Check(t)
	s, _ := openMemStore(t, obs.NewRegistry(), Options{})
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ { // overwrites: dead weight
		if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	u, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Segments < 1 || u.SegmentBytes <= 0 {
		t.Fatalf("usage: %+v", u)
	}
	if u.LiveBytes <= 0 || u.LiveBytes >= u.SegmentBytes {
		t.Fatalf("live bytes %d must be positive and below segment bytes %d", u.LiveBytes, u.SegmentBytes)
	}
	if u.ReclaimableBytes != u.SegmentBytes-u.LiveBytes {
		t.Fatalf("reclaimable %d != segment %d - live %d", u.ReclaimableBytes, u.SegmentBytes, u.LiveBytes)
	}
	if u.TmpFiles != 0 || u.QuarantineFiles != 0 {
		t.Fatalf("fresh store reports stray files: %+v", u)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	u, err = s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.ReclaimableBytes != 0 {
		t.Fatalf("reclaimable after compaction = %d, want 0", u.ReclaimableBytes)
	}
	if u.SegmentBytes != u.LiveBytes {
		t.Fatalf("compacted store: segment %d != live %d", u.SegmentBytes, u.LiveBytes)
	}
}
