// Package storage implements a small embedded key-value store used by STIR
// to persist crawl checkpoints and collected datasets. It is a log-structured
// store in the bitcask style: append-only segment files on disk, an in-memory
// hash index from key to the latest record position, CRC-checked records,
// and a compaction pass that rewrites only live data.
//
// The store favours simplicity and crash-safety over write throughput, which
// matches its role: the Twitter crawler writes a few thousand records per
// run and must be resumable after an interrupted crawl.
//
// Durability model (see DESIGN.md §11): every disk operation goes through an
// injectable filesystem seam (internal/storage/vfs), the directory is fsynced
// whenever the segment set changes, compaction commits via temp-file+rename,
// and Open salvages damaged logs — a torn tail is truncated, while a
// mid-segment corrupt range is skipped (resyncing on the next valid record)
// and reported for Repair to quarantine.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/storage/vfs"
)

const (
	// recordHeaderSize is crc(4) + flags(1) + keyLen(4) + valLen(4).
	recordHeaderSize = 13
	flagTombstone    = 1

	segmentPrefix = "seg-"
	segmentSuffix = ".log"
	tmpSuffix     = ".tmp"
)

// DefaultMaxSegmentBytes is the segment roll threshold when Options leaves
// MaxSegmentBytes zero.
const DefaultMaxSegmentBytes = 8 << 20

// Errors returned by the store.
var (
	ErrKeyNotFound = errors.New("storage: key not found")
	ErrClosed      = errors.New("storage: store is closed")
	ErrCorrupt     = errors.New("storage: corrupt record")
	ErrEmptyKey    = errors.New("storage: empty key")
)

// Options configures a Store.
type Options struct {
	// MaxSegmentBytes rolls the active segment once it exceeds this size.
	MaxSegmentBytes int64
	// SyncEveryPut fsyncs after every write. Slow but durable; crawls use
	// periodic Sync instead.
	SyncEveryPut bool
	// Metrics receives the store's write/compaction series (nil means
	// obs.Default; obs.Discard disables).
	Metrics *obs.Registry
	// FS is the filesystem seam (nil means the real filesystem). Tests
	// inject vfs.Mem/vfs.Fault here to simulate power cuts, torn writes,
	// dropped fsyncs, bit flips and disk exhaustion.
	FS vfs.FS
	// Budget bounds the store's on-disk footprint: crossing the soft
	// watermark triggers emergency compaction, crossing the hard one flips
	// the store read-only (ErrReadOnly) until compaction frees space. The
	// zero value disables both watermarks.
	Budget Budget
	// Trace, when set, records a span per segment-level operation (currently
	// compaction) with before/after segment counts. Nil disables.
	Trace *trace.Tracer
}

// Store is the log-structured key-value store. All methods are safe for
// concurrent use.
type Store struct {
	mu     sync.RWMutex
	dir    string
	fs     vfs.FS
	opts   Options
	index  map[string]recordPos
	segs   map[int]vfs.File // read handles by segment id
	active vfs.File
	actID  int
	actOff int64
	closed bool
	puts   int64       // total put operations, for stats
	dead   int64       // superseded or deleted records, drives compaction advice
	scrub  ScrubReport // what Open found (and salvaged) in the on-disk log

	diskBytes       int64 // segment bytes on disk, maintained incrementally
	degraded        bool  // read-only: budget exhausted or ENOSPC observed
	softTripped     bool  // soft watermark already alerted (resets under it)
	tornTail        bool  // an ENOSPC fragment needs truncating before appends
	compactInFlight bool  // one emergency compaction at a time

	mAppends      *obs.Counter
	mBytes        *obs.Counter
	mBatchCommits *obs.Counter
	mCompactions  *obs.Counter
	mScrubs       *obs.Counter
	mTornTails    *obs.Counter
	mCorrupt      *obs.Counter
	mSalvaged     *obs.Counter
	mQuarantined  *obs.Counter
	mSnapshots    *obs.Counter
	mRepairs      *obs.Counter

	mDiskBytes *obs.Gauge
	mDegraded  *obs.Gauge
	mSoftTrips *obs.Counter
	mHardTrips *obs.Counter
	mRecovered *obs.Counter
	mENOSPC    *obs.Counter
	mEmergency *obs.Counter
}

type recordPos struct {
	seg  int
	off  int64
	size int64
	// sub is the operation index inside a batch record, or -1 for a plain
	// record.
	sub int
}

// Open opens (or creates) a store in dir, rebuilding the index by scanning
// all segments in order. Damage from a crash or from media corruption is
// salvaged rather than fatal: a truncated tail record is dropped, and a
// corrupt range in the middle of a segment is skipped with every later valid
// record recovered. What was found is available via ScrubReport.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	fsys := vfs.Or(opts.FS)
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	reg := obs.Or(opts.Metrics)
	s := &Store{
		dir:   dir,
		fs:    fsys,
		opts:  opts,
		index: make(map[string]recordPos),
		segs:  make(map[int]vfs.File),

		mAppends:      reg.Counter("storage_appends_total"),
		mBytes:        reg.Counter("storage_bytes_written_total"),
		mBatchCommits: reg.Counter("storage_batch_commits_total"),
		mCompactions:  reg.Counter("storage_compactions_total"),
		mScrubs:       reg.Counter("storage_scrub_runs_total"),
		mTornTails:    reg.Counter("storage_scrub_torn_tails_total"),
		mCorrupt:      reg.Counter("storage_scrub_corrupt_ranges_total"),
		mSalvaged:     reg.Counter("storage_salvaged_records_total"),
		mQuarantined:  reg.Counter("storage_quarantined_records_total"),
		mSnapshots:    reg.Counter("storage_snapshots_total"),
		mRepairs:      reg.Counter("storage_repairs_total"),

		mDiskBytes: reg.Gauge("storage_disk_bytes"),
		mDegraded:  reg.Gauge("storage_disk_degraded"),
		mSoftTrips: reg.Counter("storage_disk_soft_trips_total"),
		mHardTrips: reg.Counter("storage_disk_hard_trips_total"),
		mRecovered: reg.Counter("storage_disk_recovered_total"),
		mENOSPC:    reg.Counter("storage_disk_enospc_total"),
		mEmergency: reg.Counter("storage_disk_emergency_compactions_total"),
	}
	if err := s.removeStaleTemps(); err != nil {
		return nil, err
	}
	if err := s.loadAllLocked(); err != nil {
		s.closeAll()
		return nil, err
	}
	// A store reopened over its budget should degrade (or start its
	// emergency compaction) immediately, not after the first write.
	s.recomputeDiskLocked()
	s.checkBudgetLocked()
	return s, nil
}

// removeStaleTemps deletes temp files left by a compaction or restore that
// crashed before its rename — they were never part of the store.
func (s *Store) removeStaleTemps() error {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("storage: remove stale temp %s: %w", name, err)
			}
			removed = true
		}
	}
	if removed {
		return s.fs.SyncDir(s.dir)
	}
	return nil
}

// loadAllLocked scans every segment, rebuilds the index and opens the active
// segment. Callers hold no lock yet (Open) or the write lock (Repair reload).
func (s *Store) loadAllLocked() error {
	ids, err := listSegments(s.fs, s.dir)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := s.loadSegment(id); err != nil {
			return err
		}
	}
	// The newest segment becomes the active one; otherwise start at 1.
	s.actID = 1
	if len(ids) > 0 {
		s.actID = ids[len(ids)-1]
	}
	created := len(ids) == 0
	f, err := s.fs.OpenAppend(s.segPath(s.actID))
	if err != nil {
		return fmt.Errorf("storage: open active segment: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.actOff = size
	if created {
		// Make the freshly created first segment's directory entry durable.
		if err := s.fs.SyncDir(s.dir); err != nil {
			return err
		}
	}
	if _, ok := s.segs[s.actID]; !ok {
		if err := s.openRead(s.actID); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segmentPrefix, id, segmentSuffix))
}

func listSegments(fsys vfs.FS, dir string) ([]int, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, name := range names {
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		id, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

func (s *Store) openRead(id int) error {
	f, err := s.fs.Open(s.segPath(id))
	if err != nil {
		return fmt.Errorf("storage: open segment %d: %w", id, err)
	}
	s.segs[id] = f
	return nil
}

// loadSegment scans one segment, updating the index. Corruption is not
// fatal: a damaged range followed by valid records is skipped (the records
// beyond it are salvaged), and a torn tail is truncated away.
func (s *Store) loadSegment(id int) error {
	if err := s.openRead(id); err != nil {
		return err
	}
	f := s.segs[id]
	size, err := f.Size()
	if err != nil {
		return err
	}
	s.scrub.Segments++
	var off int64
	salvaging := false
	for off < size {
		key, val, flags, n, err := readRecord(f, off)
		if err == io.EOF {
			break
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt) {
			next, found, serr := resyncRecord(f, off+1, size)
			if serr != nil {
				return serr
			}
			if !found {
				// Nothing valid follows: a torn tail from a crash
				// mid-append. Truncate so new appends land after the last
				// good record.
				s.scrub.TornTails++
				s.scrub.TornBytes += size - off
				s.mTornTails.Inc()
				return s.truncateSegment(id, off)
			}
			// Mid-segment corruption with valid data beyond it: this is not
			// a torn tail, so discarding the rest would lose good records.
			// Skip the damaged range, resume at the next valid record and
			// leave the physical cleanup to Repair.
			s.scrub.addCorrupt(id, off, next-off, corruptReason(err))
			s.mCorrupt.Inc()
			salvaging = true
			off = next
			continue
		}
		if err != nil {
			return err
		}
		switch {
		case flags&flagBatch != 0:
			ops, derr := decodeBatchPayload(val)
			if derr != nil {
				// CRC-valid yet undecodable batch: quarantine-in-place this
				// one record and keep scanning.
				s.scrub.addCorrupt(id, off, n, "undecodable batch payload")
				s.mCorrupt.Inc()
				salvaging = true
				off += n
				continue
			}
			for i, op := range ops {
				if op.tomb {
					if _, had := s.index[op.key]; had {
						s.dead++
					}
					delete(s.index, op.key)
					s.dead++
					continue
				}
				if _, had := s.index[op.key]; had {
					s.dead++
				}
				s.index[op.key] = recordPos{seg: id, off: off, size: n, sub: i}
			}
		case flags&flagTombstone != 0:
			if _, had := s.index[string(key)]; had {
				s.dead++
			}
			delete(s.index, string(key))
			s.dead++ // the tombstone itself is dead weight
		default:
			if _, had := s.index[string(key)]; had {
				s.dead++
			}
			s.index[string(key)] = recordPos{seg: id, off: off, size: n, sub: -1}
		}
		s.scrub.Records++
		if salvaging {
			s.scrub.Salvaged++
			s.mSalvaged.Inc()
		}
		off += n
	}
	return nil
}

// truncateSegment chops a segment at off, discarding a torn tail record.
func (s *Store) truncateSegment(id int, off int64) error {
	if f, ok := s.segs[id]; ok {
		delete(s.segs, id)
		if err := f.Close(); err != nil {
			return fmt.Errorf("storage: close torn segment %d: %w", id, err)
		}
	}
	if err := s.fs.Truncate(s.segPath(id), off); err != nil {
		return fmt.Errorf("storage: truncate torn segment %d: %w", id, err)
	}
	return s.openRead(id)
}

// readRecord reads one record at off. size is the full on-disk length.
// io.EOF means a clean end; io.ErrUnexpectedEOF means the record extends
// past the end of the file (a torn tail).
func readRecord(f io.ReaderAt, off int64) (key, val []byte, flags byte, size int64, err error) {
	var hdr [recordHeaderSize]byte
	n, err := f.ReadAt(hdr[:], off)
	if err != nil && err != io.EOF {
		return nil, nil, 0, 0, err
	}
	if n == 0 {
		return nil, nil, 0, 0, io.EOF
	}
	if n < recordHeaderSize {
		// A partial header at the end of the file is a torn write, not a
		// clean EOF — leaving it in place would corrupt the next append.
		return nil, nil, 0, 0, io.ErrUnexpectedEOF
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	flags = hdr[4]
	keyLen := binary.LittleEndian.Uint32(hdr[5:9])
	valLen := binary.LittleEndian.Uint32(hdr[9:13])
	if keyLen > 1<<20 || valLen > 1<<28 {
		return nil, nil, 0, 0, fmt.Errorf("%w: implausible lengths key=%d val=%d", ErrCorrupt, keyLen, valLen)
	}
	body := make([]byte, int(keyLen)+int(valLen))
	if _, err = f.ReadAt(body, off+recordHeaderSize); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, 0, 0, err
	}
	h := crc32.NewIEEE()
	h.Write(hdr[4:])
	h.Write(body)
	if h.Sum32() != crc {
		return nil, nil, 0, 0, fmt.Errorf("%w: crc mismatch at offset %d", ErrCorrupt, off)
	}
	key = body[:keyLen]
	val = body[keyLen:]
	return key, val, flags, recordHeaderSize + int64(len(body)), nil
}

func encodeRecord(key, val []byte, tomb bool) []byte {
	flags := byte(0)
	if tomb {
		flags = flagTombstone
	}
	return encodeRecordFlags(key, val, flags)
}

func encodeRecordFlags(key, val []byte, flags byte) []byte {
	buf := make([]byte, recordHeaderSize+len(key)+len(val))
	buf[4] = flags
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[9:13], uint32(len(val)))
	copy(buf[recordHeaderSize:], key)
	copy(buf[recordHeaderSize+len(key):], val)
	h := crc32.NewIEEE()
	h.Write(buf[4:])
	binary.LittleEndian.PutUint32(buf[0:4], h.Sum32())
	return buf
}

// Put stores val under key, overwriting any previous value.
func (s *Store) Put(key string, val []byte) error {
	if key == "" {
		return ErrEmptyKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rec := encodeRecord([]byte(key), val, false)
	pos, err := s.appendLocked(rec)
	if err != nil {
		return err
	}
	if _, had := s.index[key]; had {
		s.dead++
	}
	pos.sub = -1
	s.index[key] = pos
	s.puts++
	return nil
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	if key == "" {
		return ErrEmptyKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	rec := encodeRecord([]byte(key), nil, true)
	if _, err := s.appendLocked(rec); err != nil {
		return err
	}
	delete(s.index, key)
	s.dead += 2 // the old record and the tombstone
	return nil
}

func (s *Store) appendLocked(rec []byte) (recordPos, error) {
	if s.degraded {
		return recordPos{}, ErrReadOnly
	}
	if s.tornTail {
		// An earlier ENOSPC fragment is still on disk because the repair
		// truncate itself failed; retry it before appending over garbage.
		if err := s.fs.Truncate(s.segPath(s.actID), s.actOff); err != nil {
			return recordPos{}, fmt.Errorf("storage: repair torn append tail: %w", err)
		}
		s.tornTail = false
		s.recomputeDiskLocked()
	}
	if s.actOff+int64(len(rec)) > s.opts.MaxSegmentBytes && s.actOff > 0 {
		if err := s.rollLocked(); err != nil {
			s.noteDiskErrLocked(err)
			return recordPos{}, err
		}
	}
	off := s.actOff
	if n, err := s.active.Write(rec); err != nil {
		// ENOSPC mid-record: whatever fragment landed would desync the
		// append offset from the file, so chop the file back to the last
		// full record. Index offsets all point below actOff, so reads are
		// unaffected either way; if the truncate also fails, retry it
		// before the next append instead of failing reads now.
		if n > 0 {
			if terr := s.fs.Truncate(s.segPath(s.actID), off); terr != nil {
				s.tornTail = true
			}
		}
		s.noteDiskErrLocked(err)
		return recordPos{}, fmt.Errorf("storage: append: %w", err)
	}
	s.actOff += int64(len(rec))
	s.diskBytes += int64(len(rec))
	s.mAppends.Inc()
	s.mBytes.Add(int64(len(rec)))
	if s.opts.SyncEveryPut {
		if err := s.active.Sync(); err != nil {
			s.noteDiskErrLocked(err)
			return recordPos{}, err
		}
	}
	s.checkBudgetLocked()
	return recordPos{seg: s.actID, off: off, size: int64(len(rec))}, nil
}

func (s *Store) rollLocked() error {
	if err := s.active.Sync(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.actID++
	f, err := s.fs.OpenAppend(s.segPath(s.actID))
	if err != nil {
		return err
	}
	// Without a directory fsync a crash could drop the new segment's entry
	// even after its contents were synced, silently losing every record
	// appended post-roll.
	if err := s.fs.SyncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.actOff = 0
	return s.openRead(s.actID)
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	pos, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	return s.readValueLocked(key, pos)
}

func (s *Store) readValueLocked(key string, pos recordPos) ([]byte, error) {
	f, ok := s.segs[pos.seg]
	if !ok {
		return nil, fmt.Errorf("storage: segment %d missing for key %q", pos.seg, key)
	}
	k, v, flags, _, err := readRecord(f, pos.off)
	if err != nil {
		return nil, err
	}
	if flags&flagBatch != 0 {
		ops, err := decodeBatchPayload(v)
		if err != nil {
			return nil, err
		}
		if pos.sub < 0 || pos.sub >= len(ops) {
			return nil, fmt.Errorf("%w: batch sub-index %d out of range for %q", ErrCorrupt, pos.sub, key)
		}
		op := ops[pos.sub]
		if op.tomb || op.key != key {
			return nil, fmt.Errorf("%w: batch index/record mismatch for %q", ErrCorrupt, key)
		}
		return op.val, nil
	}
	if flags&flagTombstone != 0 || string(k) != key {
		return nil, fmt.Errorf("%w: index/record mismatch for %q", ErrCorrupt, key)
	}
	return v, nil
}

// Has reports whether key exists.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok && !s.closed
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns all live keys, sorted. Intended for iteration and tests; the
// store's datasets are small enough that materialising the key list is fine.
func (s *Store) Keys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// KeysWithPrefix returns live keys having the given prefix, sorted.
func (s *Store) KeysWithPrefix(prefix string) []string {
	s.mu.RLock()
	out := make([]string, 0, 16)
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Each calls fn for every live key/value pair in sorted key order; fn
// returning an error stops iteration.
func (s *Store) Each(fn func(key string, val []byte) error) error {
	for _, k := range s.Keys() {
		v, err := s.Get(k)
		if err != nil {
			if errors.Is(err, ErrKeyNotFound) {
				continue // deleted between Keys and Get
			}
			return err
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage. A disk-exhaustion
// failure flips the store into degraded mode — delayed allocation means
// ENOSPC can report here for bytes an earlier append accepted.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	err := s.active.Sync()
	s.noteDiskErrLocked(err)
	return err
}

// Stats describes the store's physical state.
type Stats struct {
	LiveKeys    int
	Segments    int
	Puts        int64
	DeadRecords int64
	DiskBytes   int64
	Degraded    bool
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		LiveKeys:    len(s.index),
		Segments:    len(s.segs),
		Puts:        s.puts,
		DeadRecords: s.dead,
		DiskBytes:   s.diskBytes,
		Degraded:    s.degraded,
	}
}

// Compact rewrites all live records into a fresh segment and deletes the old
// ones, reclaiming space held by superseded records and tombstones.
//
// The pass is crash-atomic: the new segment is built in a temp file, synced,
// renamed into place and the directory fsynced before any old state is
// touched — a crash at any point leaves either the old segment set or the
// new one, never a mix. Every error path leaves the store usable: failures
// while building discard the temp file and keep the old state; failures
// removing old segments after the commit point are reported but the store
// continues on the new segment (a leftover segment is re-deleted by the next
// compaction and is harmless to recovery, since rebuilding the index replays
// segments in order and the new one wins).
//
// Compaction stays allowed in disk-degraded mode — it is the operation that
// frees space — and a pass that succeeds with the footprint back under the
// hard watermark heals the store. A pass that fails on disk exhaustion
// flips (or keeps) the store degraded.
func (s *Store) Compact() error {
	err := s.compact()
	if err != nil && !errors.Is(err, ErrClosed) {
		s.mu.Lock()
		s.noteDiskErrLocked(err)
		s.mu.Unlock()
	}
	return err
}

func (s *Store) compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	sp := s.opts.Trace.StartRoot("storage.compact")
	if sp != nil {
		sp.AnnotateInt("segments_before", int64(len(s.segs)))
		sp.AnnotateInt("live_keys", int64(len(s.index)))
		sp.AnnotateInt("dead_records", s.dead)
		defer sp.End()
	}
	newID := s.actID + 1
	finalPath := s.segPath(newID)
	tmpPath := finalPath + tmpSuffix
	f, err := s.fs.Create(tmpPath)
	if err != nil {
		return err
	}
	discard := func(err error) error {
		f.Close()
		s.fs.Remove(tmpPath) // best-effort; Open sweeps stale temps anyway
		return err
	}
	newIndex := make(map[string]recordPos, len(s.index))
	var off int64
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, err := s.readValueLocked(k, s.index[k])
		if err != nil {
			return discard(err)
		}
		rec := encodeRecord([]byte(k), v, false)
		if _, err := f.Write(rec); err != nil {
			return discard(err)
		}
		newIndex[k] = recordPos{seg: newID, off: off, size: int64(len(rec)), sub: -1}
		off += int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmpPath)
		return err
	}
	// Commit point: rename into place and make the entry durable.
	if err := s.fs.Rename(tmpPath, finalPath); err != nil {
		s.fs.Remove(tmpPath)
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		s.fs.Remove(finalPath)
		return err
	}
	// Open the new segment's handles before dismantling the old state, so a
	// failure here can still fall back to the old, untouched store.
	rf, err := s.fs.Open(finalPath)
	if err != nil {
		s.fs.Remove(finalPath)
		return err
	}
	af, err := s.fs.OpenAppend(finalPath)
	if err != nil {
		rf.Close()
		s.fs.Remove(finalPath)
		return err
	}
	// Swap in the new segment. From here every path keeps the store usable.
	oldActive, oldSegs := s.active, s.segs
	s.active = af
	s.actID = newID
	s.actOff = off
	s.segs = map[int]vfs.File{newID: rf}
	s.index = newIndex
	s.dead = 0
	s.mCompactions.Inc()
	// Close errors are surfaced, not swallowed: real filesystems flush
	// delayed allocations at close, so this is exactly where a full disk
	// reports last — and an unreported close error here would hide that
	// space was never reclaimed.
	var rmErr error
	if err := oldActive.Close(); err != nil {
		rmErr = fmt.Errorf("close old active segment: %w", err)
	}
	removed := 0
	for id, h := range oldSegs {
		if err := h.Close(); err != nil && rmErr == nil {
			rmErr = fmt.Errorf("close old segment %d: %w", id, err)
		}
		if err := s.fs.Remove(s.segPath(id)); err != nil {
			if rmErr == nil {
				rmErr = err
			}
			continue
		}
		removed++
	}
	if removed > 0 {
		if err := s.fs.SyncDir(s.dir); err != nil && rmErr == nil {
			rmErr = err
		}
	}
	sp.AnnotateInt("segments_removed", int64(removed))
	s.recomputeDiskLocked()
	if rmErr != nil {
		// The compaction itself committed; only space reclamation is
		// incomplete. A resurrected old segment is harmless (see above) —
		// but the space it holds was not freed, so don't heal on it.
		sp.Annotate("error", "old segment removal incomplete")
		return fmt.Errorf("storage: compacted, but removing old segments failed (store remains usable): %w", rmErr)
	}
	s.maybeHealLocked()
	return nil
}

// Close flushes and closes all file handles. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	s.closeAllLocked()
	return err
}

func (s *Store) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeAllLocked()
}

func (s *Store) closeAllLocked() {
	for id, f := range s.segs {
		f.Close()
		delete(s.segs, id)
	}
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
}

// ShouldCompact advises compaction when dead records exceed the given
// fraction of total records written (live + dead). A crawl loop can call
// this periodically and Compact when it returns true.
func (s *Store) ShouldCompact(deadFraction float64) bool {
	if deadFraction <= 0 {
		deadFraction = 0.5
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := int64(len(s.index)) + s.dead
	if total == 0 {
		return false
	}
	return float64(s.dead)/float64(total) >= deadFraction
}
