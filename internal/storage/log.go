// Package storage implements a small embedded key-value store used by STIR
// to persist crawl checkpoints and collected datasets. It is a log-structured
// store in the bitcask style: append-only segment files on disk, an in-memory
// hash index from key to the latest record position, CRC-checked records,
// and a compaction pass that rewrites only live data.
//
// The store favours simplicity and crash-safety over write throughput, which
// matches its role: the Twitter crawler writes a few thousand records per
// run and must be resumable after an interrupted crawl.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"stir/internal/obs"
)

const (
	// recordHeaderSize is crc(4) + flags(1) + keyLen(4) + valLen(4).
	recordHeaderSize = 13
	flagTombstone    = 1

	segmentPrefix = "seg-"
	segmentSuffix = ".log"
)

// DefaultMaxSegmentBytes is the segment roll threshold when Options leaves
// MaxSegmentBytes zero.
const DefaultMaxSegmentBytes = 8 << 20

// Errors returned by the store.
var (
	ErrKeyNotFound = errors.New("storage: key not found")
	ErrClosed      = errors.New("storage: store is closed")
	ErrCorrupt     = errors.New("storage: corrupt record")
	ErrEmptyKey    = errors.New("storage: empty key")
)

// Options configures a Store.
type Options struct {
	// MaxSegmentBytes rolls the active segment once it exceeds this size.
	MaxSegmentBytes int64
	// SyncEveryPut fsyncs after every write. Slow but durable; crawls use
	// periodic Sync instead.
	SyncEveryPut bool
	// Metrics receives the store's write/compaction series (nil means
	// obs.Default; obs.Discard disables).
	Metrics *obs.Registry
}

// Store is the log-structured key-value store. All methods are safe for
// concurrent use.
type Store struct {
	mu     sync.RWMutex
	dir    string
	opts   Options
	index  map[string]recordPos
	segs   map[int]*os.File // read handles by segment id
	active *os.File
	actID  int
	actOff int64
	closed bool
	puts   int64 // total put operations, for stats
	dead   int64 // superseded or deleted records, drives compaction advice

	mAppends      *obs.Counter
	mBytes        *obs.Counter
	mBatchCommits *obs.Counter
	mCompactions  *obs.Counter
}

type recordPos struct {
	seg  int
	off  int64
	size int64
	// sub is the operation index inside a batch record, or -1 for a plain
	// record.
	sub int
}

// Open opens (or creates) a store in dir, rebuilding the index by scanning
// all segments in order. A truncated tail record (from a crash) is dropped.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	reg := obs.Or(opts.Metrics)
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]recordPos),
		segs:  make(map[int]*os.File),

		mAppends:      reg.Counter("storage_appends_total"),
		mBytes:        reg.Counter("storage_bytes_written_total"),
		mBatchCommits: reg.Counter("storage_batch_commits_total"),
		mCompactions:  reg.Counter("storage_compactions_total"),
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := s.loadSegment(id); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	// The newest segment becomes the active one; otherwise start at 1.
	s.actID = 1
	if len(ids) > 0 {
		s.actID = ids[len(ids)-1]
	}
	f, err := os.OpenFile(s.segPath(s.actID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.closeAll()
		return nil, fmt.Errorf("storage: open active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		s.closeAll()
		return nil, err
	}
	s.active = f
	s.actOff = st.Size()
	if _, ok := s.segs[s.actID]; !ok {
		if err := s.openRead(s.actID); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segmentPrefix, id, segmentSuffix))
}

func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		id, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

func (s *Store) openRead(id int) error {
	f, err := os.Open(s.segPath(id))
	if err != nil {
		return fmt.Errorf("storage: open segment %d: %w", id, err)
	}
	s.segs[id] = f
	return nil
}

// loadSegment scans one segment, updating the index.
func (s *Store) loadSegment(id int) error {
	if err := s.openRead(id); err != nil {
		return err
	}
	f := s.segs[id]
	var off int64
	for {
		key, val, flags, size, err := readRecord(f, off)
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt) {
			// Crash-truncated tail: drop everything from here on.
			return s.truncateSegment(id, off)
		}
		if err != nil {
			return err
		}
		switch {
		case flags&flagBatch != 0:
			ops, err := decodeBatchPayload(val)
			if err != nil {
				return s.truncateSegment(id, off)
			}
			for i, op := range ops {
				if op.tomb {
					if _, had := s.index[op.key]; had {
						s.dead++
					}
					delete(s.index, op.key)
					s.dead++
					continue
				}
				if _, had := s.index[op.key]; had {
					s.dead++
				}
				s.index[op.key] = recordPos{seg: id, off: off, size: size, sub: i}
			}
		case flags&flagTombstone != 0:
			if _, had := s.index[string(key)]; had {
				s.dead++
			}
			delete(s.index, string(key))
			s.dead++ // the tombstone itself is dead weight
		default:
			if _, had := s.index[string(key)]; had {
				s.dead++
			}
			s.index[string(key)] = recordPos{seg: id, off: off, size: size, sub: -1}
		}
		off += size
	}
}

// truncateSegment chops a segment at off, discarding a torn tail record.
func (s *Store) truncateSegment(id int, off int64) error {
	if f, ok := s.segs[id]; ok {
		f.Close()
		delete(s.segs, id)
	}
	if err := os.Truncate(s.segPath(id), off); err != nil {
		return fmt.Errorf("storage: truncate torn segment %d: %w", id, err)
	}
	return s.openRead(id)
}

// readRecord reads one record at off. size is the full on-disk length.
func readRecord(f *os.File, off int64) (key, val []byte, flags byte, size int64, err error) {
	var hdr [recordHeaderSize]byte
	if _, err = f.ReadAt(hdr[:], off); err != nil {
		if err == io.EOF {
			return nil, nil, 0, 0, io.EOF
		}
		return nil, nil, 0, 0, err
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	flags = hdr[4]
	keyLen := binary.LittleEndian.Uint32(hdr[5:9])
	valLen := binary.LittleEndian.Uint32(hdr[9:13])
	if keyLen > 1<<20 || valLen > 1<<28 {
		return nil, nil, 0, 0, fmt.Errorf("%w: implausible lengths key=%d val=%d", ErrCorrupt, keyLen, valLen)
	}
	body := make([]byte, int(keyLen)+int(valLen))
	if _, err = f.ReadAt(body, off+recordHeaderSize); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, 0, 0, err
	}
	h := crc32.NewIEEE()
	h.Write(hdr[4:])
	h.Write(body)
	if h.Sum32() != crc {
		return nil, nil, 0, 0, fmt.Errorf("%w: crc mismatch at offset %d", ErrCorrupt, off)
	}
	key = body[:keyLen]
	val = body[keyLen:]
	return key, val, flags, recordHeaderSize + int64(len(body)), nil
}

func encodeRecord(key, val []byte, tomb bool) []byte {
	flags := byte(0)
	if tomb {
		flags = flagTombstone
	}
	return encodeRecordFlags(key, val, flags)
}

func encodeRecordFlags(key, val []byte, flags byte) []byte {
	buf := make([]byte, recordHeaderSize+len(key)+len(val))
	buf[4] = flags
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[9:13], uint32(len(val)))
	copy(buf[recordHeaderSize:], key)
	copy(buf[recordHeaderSize+len(key):], val)
	h := crc32.NewIEEE()
	h.Write(buf[4:])
	binary.LittleEndian.PutUint32(buf[0:4], h.Sum32())
	return buf
}

// Put stores val under key, overwriting any previous value.
func (s *Store) Put(key string, val []byte) error {
	if key == "" {
		return ErrEmptyKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rec := encodeRecord([]byte(key), val, false)
	pos, err := s.appendLocked(rec)
	if err != nil {
		return err
	}
	if _, had := s.index[key]; had {
		s.dead++
	}
	pos.sub = -1
	s.index[key] = pos
	s.puts++
	return nil
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	if key == "" {
		return ErrEmptyKey
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	rec := encodeRecord([]byte(key), nil, true)
	if _, err := s.appendLocked(rec); err != nil {
		return err
	}
	delete(s.index, key)
	s.dead += 2 // the old record and the tombstone
	return nil
}

func (s *Store) appendLocked(rec []byte) (recordPos, error) {
	if s.actOff+int64(len(rec)) > s.opts.MaxSegmentBytes && s.actOff > 0 {
		if err := s.rollLocked(); err != nil {
			return recordPos{}, err
		}
	}
	off := s.actOff
	if _, err := s.active.Write(rec); err != nil {
		return recordPos{}, fmt.Errorf("storage: append: %w", err)
	}
	s.actOff += int64(len(rec))
	s.mAppends.Inc()
	s.mBytes.Add(int64(len(rec)))
	if s.opts.SyncEveryPut {
		if err := s.active.Sync(); err != nil {
			return recordPos{}, err
		}
	}
	return recordPos{seg: s.actID, off: off, size: int64(len(rec))}, nil
}

func (s *Store) rollLocked() error {
	if err := s.active.Sync(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.actID++
	f, err := os.OpenFile(s.segPath(s.actID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.active = f
	s.actOff = 0
	return s.openRead(s.actID)
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	pos, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	return s.readValueLocked(key, pos)
}

func (s *Store) readValueLocked(key string, pos recordPos) ([]byte, error) {
	f, ok := s.segs[pos.seg]
	if !ok {
		return nil, fmt.Errorf("storage: segment %d missing for key %q", pos.seg, key)
	}
	k, v, flags, _, err := readRecord(f, pos.off)
	if err != nil {
		return nil, err
	}
	if flags&flagBatch != 0 {
		ops, err := decodeBatchPayload(v)
		if err != nil {
			return nil, err
		}
		if pos.sub < 0 || pos.sub >= len(ops) {
			return nil, fmt.Errorf("%w: batch sub-index %d out of range for %q", ErrCorrupt, pos.sub, key)
		}
		op := ops[pos.sub]
		if op.tomb || op.key != key {
			return nil, fmt.Errorf("%w: batch index/record mismatch for %q", ErrCorrupt, key)
		}
		return op.val, nil
	}
	if flags&flagTombstone != 0 || string(k) != key {
		return nil, fmt.Errorf("%w: index/record mismatch for %q", ErrCorrupt, key)
	}
	return v, nil
}

// Has reports whether key exists.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok && !s.closed
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns all live keys, sorted. Intended for iteration and tests; the
// store's datasets are small enough that materialising the key list is fine.
func (s *Store) Keys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// KeysWithPrefix returns live keys having the given prefix, sorted.
func (s *Store) KeysWithPrefix(prefix string) []string {
	s.mu.RLock()
	out := make([]string, 0, 16)
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Each calls fn for every live key/value pair in sorted key order; fn
// returning an error stops iteration.
func (s *Store) Each(fn func(key string, val []byte) error) error {
	for _, k := range s.Keys() {
		v, err := s.Get(k)
		if err != nil {
			if errors.Is(err, ErrKeyNotFound) {
				continue // deleted between Keys and Get
			}
			return err
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.active.Sync()
}

// Stats describes the store's physical state.
type Stats struct {
	LiveKeys    int
	Segments    int
	Puts        int64
	DeadRecords int64
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		LiveKeys:    len(s.index),
		Segments:    len(s.segs),
		Puts:        s.puts,
		DeadRecords: s.dead,
	}
}

// Compact rewrites all live records into fresh segments and deletes the old
// ones, reclaiming space held by superseded records and tombstones.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	newID := s.actID + 1
	path := s.segPath(newID)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	newIndex := make(map[string]recordPos, len(s.index))
	var off int64
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, err := s.readValueLocked(k, s.index[k])
		if err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
		rec := encodeRecord([]byte(k), v, false)
		if _, err := f.Write(rec); err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
		newIndex[k] = recordPos{seg: newID, off: off, size: int64(len(rec)), sub: -1}
		off += int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Swap in the new segment.
	oldIDs := make([]int, 0, len(s.segs))
	for id := range s.segs {
		oldIDs = append(oldIDs, id)
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	for _, id := range oldIDs {
		s.segs[id].Close()
		delete(s.segs, id)
		os.Remove(s.segPath(id))
	}
	s.index = newIndex
	s.dead = 0
	s.actID = newID
	if err := s.openRead(newID); err != nil {
		return err
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.active = af
	s.actOff = off
	s.mCompactions.Inc()
	return nil
}

// Close flushes and closes all file handles. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.closeAllLocked()
	return err
}

func (s *Store) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeAllLocked()
}

func (s *Store) closeAllLocked() {
	for id, f := range s.segs {
		f.Close()
		delete(s.segs, id)
	}
}

// ShouldCompact advises compaction when dead records exceed the given
// fraction of total records written (live + dead). A crawl loop can call
// this periodically and Compact when it returns true.
func (s *Store) ShouldCompact(deadFraction float64) bool {
	if deadFraction <= 0 {
		deadFraction = 0.5
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := int64(len(s.index)) + s.dead
	if total == 0 {
		return false
	}
	return float64(s.dead)/float64(total) >= deadFraction
}
