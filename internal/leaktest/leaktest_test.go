package leaktest

import (
	"runtime"
	"testing"
	"time"
)

// TestCheckPassesWhenGoroutinesDrain spawns goroutines that exit during the
// test body and verifies the guard's cleanup does not fire.
func TestCheckPassesWhenGoroutinesDrain(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() { <-done }()
	}
	close(done)
}

// TestCheckDetectsLeak runs the guard against a deliberately leaked
// goroutine on a private testing.TB shim and verifies it reports.
func TestCheckDetectsLeak(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)

	shim := &recordingTB{TB: t}
	base := runtime.NumGoroutine()
	go func() { <-stop }() // the leak
	for runtime.NumGoroutine() <= base {
		time.Sleep(time.Millisecond)
	}

	CheckWithin(shim, 50*time.Millisecond)
	// Baseline was taken *after* the leak started, so the guard must pass…
	shim.runCleanups()
	if shim.failed {
		t.Fatalf("guard failed on a pre-existing goroutine: %s", shim.msg)
	}

	// …and a guard whose baseline predates the leak must fail.
	shim2 := &recordingTB{TB: t}
	leakDone := make(chan struct{})
	CheckWithin(shim2, 50*time.Millisecond)
	go func() { <-leakDone }()
	for runtime.NumGoroutine() <= base+1 {
		time.Sleep(time.Millisecond)
	}
	shim2.runCleanups()
	if !shim2.failed {
		t.Fatal("guard missed a leaked goroutine")
	}
	close(leakDone)
}

// recordingTB captures Errorf and cleanups instead of failing the real test.
type recordingTB struct {
	testing.TB
	cleanups []func()
	failed   bool
	msg      string
}

func (r *recordingTB) Helper()          {}
func (r *recordingTB) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }
func (r *recordingTB) Errorf(f string, a ...any) {
	r.failed = true
	r.msg = f
}

func (r *recordingTB) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}
