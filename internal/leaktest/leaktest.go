// Package leaktest is a tiny, dependency-free goroutine-leak guard for
// tests. Check snapshots the goroutine count when called and registers a
// cleanup that waits for the count to settle back to that baseline after
// the test body (and every later-registered cleanup — httptest servers,
// engine Close, context cancels) has run. A count that never settles fails
// the test with a full stack dump, so the leaked goroutine is named, not
// guessed at.
//
// Call it first in the test, before servers start or loops spawn: cleanups
// run last-in-first-out, so the guard registered first checks last, after
// everything the test started has been torn down.
package leaktest

import (
	"runtime"
	"testing"
	"time"
)

// DefaultSettle bounds how long Check waits for goroutines to drain before
// declaring a leak. Shutdown is asynchronous (server conns unwind, tickers
// fire one last time), so the guard polls instead of asserting instantly —
// but it returns the moment the count settles, costing a quiet test nothing.
const DefaultSettle = 5 * time.Second

// Check snapshots the current goroutine count and, at cleanup, fails t if
// the count has not returned to that baseline within DefaultSettle.
func Check(t testing.TB) { CheckWithin(t, DefaultSettle) }

// CheckWithin is Check with an explicit settle bound.
func CheckWithin(t testing.TB, settle time.Duration) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(settle)
		n := runtime.NumGoroutine()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n <= base {
			return
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leaktest: %d goroutines still running at cleanup (baseline %d):\n%s",
			n, base, buf)
	})
}
