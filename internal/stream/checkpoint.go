package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"stir/internal/core"
	"stir/internal/obs"
	"stir/internal/storage"
	"stir/internal/storage/vfs"
	"stir/internal/twitter"
)

// Checkpoint layout in the store:
//
//	stream/meta               engine-level counters (JSON ckptMeta)
//	stream/user/<id>          one grouped user's multiset (JSON userRec)
//	stream/rejected/<id>      profile-refinement rejection marker
//
// A checkpoint is one storage batch — the store's batch record is atomic
// across a crash, so resume sees either the whole checkpoint or none of it.
// Only users dirtied since the previous checkpoint are rewritten; the cut is
// "everything ingested before Checkpoint() was called" (a drain barrier runs
// first), so a resumed engine fed the post-checkpoint suffix reproduces the
// batch result exactly.

const (
	ckptMetaKey       = "stream/meta"
	ckptUserPrefix    = "stream/user/"
	ckptRejectPrefix  = "stream/rejected/"
	ckptFormatVersion = 1
)

// isDiskFull classifies a checkpoint failure as disk exhaustion — the
// store's typed read-only degradation or a raw ENOSPC that slipped through.
// These defer the checkpoint (state is intact in memory, the cursor just
// does not advance); anything else is a real error.
func isDiskFull(err error) bool {
	return errors.Is(err, storage.ErrReadOnly) || vfs.IsNoSpace(err)
}

// ckptMeta is the engine-level checkpoint record.
type ckptMeta struct {
	Version  int              `json:"version"`
	Counters restoredCounters `json:"counters"`
	// Cursor is the feeder's opaque source position covered by this
	// checkpoint (see Engine.SetCursor). Absent on pre-cluster checkpoints,
	// which simply means "replay from the beginning".
	Cursor string `json:"cursor,omitempty"`
}

// placeCount is one merged string on disk.
type placeCount struct {
	State  string `json:"s"`
	County string `json:"c"`
	N      int    `json:"n"`
}

// userRec is one user's persisted multiset; rank, group and the treap are
// rebuilt on load.
type userRec struct {
	ID            int64        `json:"id"`
	ProfileState  string       `json:"ps"`
	ProfileCounty string       `json:"pc"`
	LastID        int64        `json:"last_id,omitempty"`
	Places        []placeCount `json:"places"`
}

func encodeUserState(st *userState) ([]byte, error) {
	rec := userRec{
		ID:            st.id,
		ProfileState:  st.profile.State,
		ProfileCounty: st.profile.County,
		LastID:        st.lastID,
		Places:        make([]placeCount, 0, len(st.nodes)),
	}
	// In-order walk gives a deterministic on-disk order.
	osInorder(st.root, func(n *osNode) {
		rec.Places = append(rec.Places, placeCount{State: n.place.State, County: n.place.County, N: n.count})
	})
	return json.Marshal(rec)
}

// decodeUserState rebuilds the live state: reinsert every place with its
// multiplicity, then re-rank the matched string.
func decodeUserState(b []byte, prio func() uint64) (*userState, error) {
	var rec userRec
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("stream: decode checkpoint user: %w", err)
	}
	st := newUserState(rec.ID, core.Place{State: rec.ProfileState, County: rec.ProfileCounty})
	st.lastID = rec.LastID
	for _, pc := range rec.Places {
		if pc.N <= 0 {
			return nil, fmt.Errorf("stream: checkpoint user %d: non-positive count %d", rec.ID, pc.N)
		}
		p := core.Place{State: pc.State, County: pc.County}
		if _, dup := st.nodes[p]; dup {
			return nil, fmt.Errorf("stream: checkpoint user %d: duplicate place %q", rec.ID, p.Key())
		}
		n := &osNode{place: p, key: p.Key(), count: pc.N, prio: prio()}
		st.nodes[p] = n
		st.root = osInsert(st.root, n)
		st.total += pc.N
	}
	if m := st.nodes[st.profile]; m != nil {
		st.rank = osRank(st.root, m.count, m.key)
	}
	st.group = core.GroupOfRank(st.rank)
	return st, nil
}

// Checkpoint drains in-flight tweets and commits all state changed since the
// last checkpoint as one atomic batch. Requires Config.Store.
func (e *Engine) Checkpoint() error {
	if e.cfg.Store == nil {
		return fmt.Errorf("stream: no checkpoint store configured")
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	span := e.tracer.Start("stream_checkpoint")
	defer span.End()
	_, dspan := e.cfg.Trace.Root(context.Background(), "stream.checkpoint")
	defer dspan.End()
	e.Drain()

	batch := e.cfg.Store.NewBatch()
	var meta ckptMeta
	meta.Version = ckptFormatVersion
	meta.Counters = e.restored
	// The cursor is read after the drain: every tweet it covers has been
	// applied, so the checkpoint's state is at or past the position. A batch
	// stamped between the drain and here only widens the overlap, which the
	// feeder's replay dedup absorbs.
	meta.Cursor = e.Cursor()
	// Serialise dirty users under each shard's lock, clearing dirtiness
	// optimistically; a failed commit restores the marks so nothing is lost.
	type taken struct {
		sh  *shard
		ids []twitter.UserID
	}
	var takenSets []taken
	restoreDirty := func() {
		for _, t := range takenSets {
			t.sh.mu.Lock()
			for _, id := range t.ids {
				t.sh.dirty[id] = true
			}
			t.sh.mu.Unlock()
		}
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		ids := make([]twitter.UserID, 0, len(sh.dirty))
		for id := range sh.dirty {
			ids = append(ids, id)
			if st := sh.users[id]; st != nil {
				b, err := encodeUserState(st)
				if err != nil {
					sh.mu.Unlock()
					restoreDirty()
					return err
				}
				batch.Put(ckptUserPrefix+strconv.FormatInt(int64(id), 10), b)
			} else if sh.rejected[id] {
				batch.Put(ckptRejectPrefix+strconv.FormatInt(int64(id), 10), []byte("1"))
			} else {
				// Dirty but gone: the user was handed off to another worker
				// (DropUsers). Remove both possible keys so a resume does not
				// resurrect state this engine no longer owns.
				batch.Delete(ckptUserPrefix + strconv.FormatInt(int64(id), 10))
				batch.Delete(ckptRejectPrefix + strconv.FormatInt(int64(id), 10))
			}
			delete(sh.dirty, id)
		}
		meta.Counters.Processed += sh.processed
		meta.Counters.NonGeo += sh.nonGeo
		meta.Counters.GeocodeFail += sh.geocodeFail
		meta.Counters.ProfileErr += sh.profileErr
		meta.Counters.ResolveErr += sh.resolveErr
		meta.Counters.Duplicates += sh.duplicates
		meta.Counters.Dropped += sh.drops.Load()
		sh.mu.Unlock()
		takenSets = append(takenSets, taken{sh: sh, ids: ids})
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		restoreDirty()
		return err
	}
	batch.Put(ckptMetaKey, mb)
	if err := batch.Commit(); err != nil {
		restoreDirty()
		if isDiskFull(err) {
			e.noteDeferred()
		}
		dspan.Annotate("error", err.Error())
		return fmt.Errorf("stream: checkpoint commit: %w", err)
	}
	if err := e.cfg.Store.Sync(); err != nil {
		// The batch record is in the log but not durable: dirtiness stays
		// cleared (a surviving record is simply adopted on reboot), but the
		// cursor must not advance — a crash now replays from the previous
		// checkpoint and dedup absorbs the overlap.
		if isDiskFull(err) {
			e.noteDeferred()
		}
		dspan.Annotate("error", err.Error())
		return fmt.Errorf("stream: checkpoint sync: %w", err)
	}
	e.ckptStalled.Store(false)
	e.curMu.Lock()
	e.durableCursor = meta.Cursor
	e.curMu.Unlock()
	e.checkpoints.Add(1)
	e.reg.Counter("stream_checkpoints_total").Inc()
	e.reg.Histogram("stream_checkpoint_seconds", obs.DefBuckets).ObserveDuration(span.End())
	if dspan != nil {
		dirty := 0
		for _, t := range takenSets {
			dirty += len(t.ids)
		}
		st := e.cfg.Store.Stats()
		dspan.AnnotateInt("dirty_users", int64(dirty))
		dspan.AnnotateInt("store.live_keys", int64(st.LiveKeys))
		dspan.AnnotateInt("store.segments", int64(st.Segments))
		dspan.AnnotateInt("store.dead_records", int64(st.DeadRecords))
	}
	return nil
}

// loadCheckpoint rebuilds shard state from the store (called by New, before
// the workers start, so no locking is needed).
//
// A salvaged store can be missing records or carry a damaged one that still
// parsed (a scrubbed log never hands back bytes with a bad CRC, but a record
// written by a buggy writer can decode and fail validation). Dropping one
// user's state only costs a re-crawl of that user, while refusing to start
// costs the whole pipeline — so per-record failures are skipped and counted
// in stream_checkpoint_salvage_dropped_total rather than returned. Only a
// version mismatch stays fatal: that is a config problem, not damage.
func (e *Engine) loadCheckpoint() error {
	store := e.cfg.Store
	dropped := e.reg.Counter("stream_checkpoint_salvage_dropped_total")
	if b, err := store.Get(ckptMetaKey); err == nil {
		var meta ckptMeta
		if err := json.Unmarshal(b, &meta); err != nil {
			// Counters restart from zero; the per-user state is unaffected.
			dropped.Inc()
		} else {
			if meta.Version != ckptFormatVersion {
				return fmt.Errorf("stream: unsupported checkpoint version %d", meta.Version)
			}
			e.restored = meta.Counters
			e.cursor = meta.Cursor
			e.durableCursor = meta.Cursor
		}
	}
	for _, key := range store.KeysWithPrefix(ckptUserPrefix) {
		idStr := strings.TrimPrefix(key, ckptUserPrefix)
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			dropped.Inc()
			continue
		}
		b, err := store.Get(key)
		if err != nil {
			dropped.Inc()
			continue
		}
		sh := e.shardOf(twitter.UserID(id))
		st, err := decodeUserState(b, sh.rnd.next)
		if err != nil {
			dropped.Inc()
			continue
		}
		sh.users[twitter.UserID(id)] = st
		if st.total > 0 {
			sh.usersPerGroup[st.group]++
			sh.tweetsPerGroup[st.group] += st.total
		}
	}
	for _, key := range store.KeysWithPrefix(ckptRejectPrefix) {
		idStr := strings.TrimPrefix(key, ckptRejectPrefix)
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			dropped.Inc()
			continue
		}
		e.shardOf(twitter.UserID(id)).rejected[twitter.UserID(id)] = true
	}
	return nil
}
