package stream

import (
	"stir/internal/core"
)

// Per-user incremental grouping state. The batch method (core.BuildUserGrouping)
// merges a user's tweet places into counted strings, sorts them by
// (count desc, key asc) and ranks the matched string — O(k log k) per full
// rebuild. Here the merged multiset lives in an order-statistic treap ordered
// the same way, so one tweet is a delete+insert (the place's count moves up
// by one) plus a rank query for the matched place: O(log k) per tweet, where
// k is the user's distinct-district count.

// osNode is one merged string: a tweet place with its multiplicity, sitting
// in the treap at position (count desc, key asc). size augments the subtree
// for rank queries.
type osNode struct {
	place core.Place
	key   string // cached place.Key(), the sort tiebreaker
	count int
	prio  uint64
	left  *osNode
	right *osNode
	size  int
}

func nsize(n *osNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *osNode) recalc() { n.size = 1 + nsize(n.left) + nsize(n.right) }

// beforeCK is the batch sort order: descending count, ties by ascending key.
func beforeCK(ac int, ak string, bc int, bk string) bool {
	if ac != bc {
		return ac > bc
	}
	return ak < bk
}

func rotRight(n *osNode) *osNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.recalc()
	l.recalc()
	return l
}

func rotLeft(n *osNode) *osNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.recalc()
	r.recalc()
	return r
}

func osInsert(root, n *osNode) *osNode {
	if root == nil {
		n.size = 1
		return n
	}
	if beforeCK(n.count, n.key, root.count, root.key) {
		root.left = osInsert(root.left, n)
		if root.left.prio > root.prio {
			root = rotRight(root)
		}
	} else {
		root.right = osInsert(root.right, n)
		if root.right.prio > root.prio {
			root = rotLeft(root)
		}
	}
	root.recalc()
	return root
}

func osMerge(a, b *osNode) *osNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.right = osMerge(a.right, b)
		a.recalc()
		return a
	}
	b.left = osMerge(a, b.left)
	b.recalc()
	return b
}

func osRemove(root *osNode, count int, key string) *osNode {
	if root == nil {
		return nil
	}
	if count == root.count && key == root.key {
		return osMerge(root.left, root.right)
	}
	if beforeCK(count, key, root.count, root.key) {
		root.left = osRemove(root.left, count, key)
	} else {
		root.right = osRemove(root.right, count, key)
	}
	root.recalc()
	return root
}

// osRank returns the 1-based position of (count, key) in the treap's order,
// or 0 when absent.
func osRank(root *osNode, count int, key string) int {
	r := 1
	for root != nil {
		switch {
		case count == root.count && key == root.key:
			return r + nsize(root.left)
		case beforeCK(count, key, root.count, root.key):
			root = root.left
		default:
			r += nsize(root.left) + 1
			root = root.right
		}
	}
	return 0
}

func osInorder(root *osNode, fn func(*osNode)) {
	if root == nil {
		return
	}
	osInorder(root.left, fn)
	fn(root)
	osInorder(root.right, fn)
}

// splitmix64 is the treap's priority and the engine's shard-hash mixer —
// seeded, so runs are reproducible.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// prioRNG deals deterministic treap priorities; one per shard, never shared.
type prioRNG struct{ s uint64 }

func (r *prioRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// userState is one user's live grouping: the merged-string treap, the
// matched string's current rank, and the derived Top-k group.
type userState struct {
	id      int64
	profile core.Place
	nodes   map[core.Place]*osNode
	root    *osNode
	total   int // successfully geocoded tweets, the batch TotalTweets
	rank    int // 1-based matched rank, 0 while no tweet matched the profile
	group   core.Group
	lastID  int64 // highest applied tweet ID, for monotonic dedup on replay
}

func newUserState(id int64, profile core.Place) *userState {
	return &userState{
		id:      id,
		profile: profile,
		nodes:   make(map[core.Place]*osNode, 4),
		group:   core.None,
	}
}

// observe applies one geocoded tweet place: bump the place's multiplicity
// (delete + reinsert keeps the treap ordered) and re-rank the matched
// string, whose position may shift even when p is a different place.
func (u *userState) observe(p core.Place, prio func() uint64) {
	u.total++
	n := u.nodes[p]
	if n == nil {
		n = &osNode{place: p, key: p.Key(), count: 1, prio: prio()}
		u.nodes[p] = n
		u.root = osInsert(u.root, n)
	} else {
		u.root = osRemove(u.root, n.count, n.key)
		n.count++
		n.left, n.right = nil, nil
		u.root = osInsert(u.root, n)
	}
	if m := u.nodes[u.profile]; m != nil {
		u.rank = osRank(u.root, m.count, m.key)
	}
	u.group = core.GroupOfRank(u.rank)
}

// matchedTweets is the matched string's multiplicity (0 when none).
func (u *userState) matchedTweets() int {
	if m := u.nodes[u.profile]; m != nil {
		return m.count
	}
	return 0
}

// matchShare mirrors core.UserGrouping.MatchShare.
func (u *userState) matchShare() float64 {
	if u.total == 0 {
		return 0
	}
	return float64(u.matchedTweets()) / float64(u.total)
}

// grouping materialises the batch-equivalent core.UserGrouping: the in-order
// treap walk yields exactly the merged-and-ordered Table II list.
func (u *userState) grouping() core.UserGrouping {
	merged := make([]core.MergedString, 0, len(u.nodes))
	osInorder(u.root, func(n *osNode) {
		merged = append(merged, core.MergedString{
			LocString: core.LocString{UserID: u.id, Profile: u.profile, Tweet: n.place},
			Count:     n.count,
		})
	})
	return core.UserGrouping{
		UserID:            u.id,
		Profile:           u.profile,
		Merged:            merged,
		MatchedRank:       u.rank,
		Group:             u.group,
		TotalTweets:       u.total,
		DistinctDistricts: len(u.nodes),
		MatchedTweets:     u.matchedTweets(),
	}
}
