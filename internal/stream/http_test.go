package stream

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPQueryAPI(t *testing.T) {
	ds := testDataset(t, 300, 3)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t, ds, nil)
	defer eng.Close()
	for _, tw := range allTweets(ds) {
		eng.Ingest(tw)
	}
	eng.Drain()
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}

	// /v1/groups mirrors the batch analysis.
	resp, body := get("/v1/groups")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("groups status %d: %s", resp.StatusCode, body)
	}
	var groups groupsResponse
	if err := json.Unmarshal(body, &groups); err != nil {
		t.Fatalf("groups decode: %v in %s", err, body)
	}
	if groups.Users != res.Analysis.Users || groups.Tweets != res.Analysis.Tweets {
		t.Fatalf("groups = %d users / %d tweets, batch %d / %d",
			groups.Users, groups.Tweets, res.Analysis.Users, res.Analysis.Tweets)
	}
	if len(groups.Groups) != len(res.Analysis.Groups) {
		t.Fatalf("%d groups in response", len(groups.Groups))
	}

	// /v1/users/{id} answers group, rank and weight for a grouped user.
	first := res.Groupings[0]
	resp, body = get("/v1/users/" + jsonNumber(first.UserID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("user status %d: %s", resp.StatusCode, body)
	}
	var uv UserView
	if err := json.Unmarshal(body, &uv); err != nil {
		t.Fatal(err)
	}
	if uv.Group != first.Group.String() || uv.Rank != first.MatchedRank ||
		uv.TotalTweets != first.TotalTweets || uv.Weight != first.MatchShare() {
		t.Fatalf("user view %+v, batch grouping %+v", uv, first)
	}

	if resp, _ := get("/v1/users/999999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown user status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/v1/users/nonsense"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status = %d, want 400", resp.StatusCode)
	}

	// /v1/stats exposes the funnel counters.
	resp, body = get("/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if int(st.Processed) != res.Funnel.FinalGeoTweets {
		t.Fatalf("stats processed %d, batch %d", st.Processed, res.Funnel.FinalGeoTweets)
	}

	// Writes are rejected.
	post, err := http.Post(srv.URL+"/v1/groups", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

func jsonNumber(id int64) string {
	b, _ := json.Marshal(id)
	return string(b)
}
