package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stir/internal/daemon"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/logx"
	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/resilience"
	"stir/internal/resilience/fault"
	"stir/internal/textnorm"
	"stir/internal/twitter"
)

// testStack builds a full daemon stack with tracing on and a quiet logger —
// the same surface twitterd/geocoded boot, served over httptest.
func testStack(service string, over daemon.OverloadConfig) *daemon.Stack {
	return daemon.NewStackOpts(daemon.StackOptions{
		Service:  service,
		Overload: over,
		Trace:    daemon.TraceConfig{Sample: 1, RingSize: 4096, Seed: 1},
		Metrics:  obs.NewRegistry(),
		Log:      logx.New(io.Discard, service),
	})
}

// fastPolicy is a client retry policy that records real attempts but never
// actually sleeps, with an optional hook on the first backoff.
func fastPolicy(name string, seed int64, attempts int, onFirstSleep func()) *resilience.Policy {
	var once sync.Once
	return &resilience.Policy{
		Name:        name,
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Seed:        seed,
		Metrics:     obs.NewRegistry(),
		Sleep: func(ctx context.Context, _ time.Duration) error {
			if onFirstSleep != nil {
				once.Do(onFirstSleep)
			}
			return ctx.Err()
		},
	}
}

// fetchTraceRing pulls one daemon's /debug/trace JSONL export — the same
// path `stir trace` scrapes.
func fetchTraceRing(t *testing.T, baseURL string) []trace.Record {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace = %d", resp.StatusCode)
	}
	var recs []trace.Record
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var rec trace.Record
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("bad JSONL: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func annotMap(rec trace.Record) map[string]string {
	m := make(map[string]string, len(rec.Annots))
	for _, a := range rec.Annots {
		m[a.Key] = a.Val
	}
	return m
}

// TestTraceChaosEndToEnd is the acceptance run for the tracing subsystem: a
// seeded chaos stream run against real twitterd/geocoded stacks (fault
// injection, admission control) whose /debug/trace rings, merged the way
// `stir trace` merges them, reassemble into one trace spanning
// stir-stream → twitterd → geocoded with retry, shed and stage annotations.
func TestTraceChaosEndToEnd(t *testing.T) {
	ds := testDataset(t, 300, 5)
	seed := fault.SeedFromEnv(2026)

	// One user whose profile holds literal GPS coordinates: their cold-user
	// profile leg must fan out over BOTH daemons (user lookup on twitterd,
	// reverse geocode on geocoded) inside a single distributed trace.
	var pt geo.Point
	for _, tw := range allTweets(ds) {
		if tw.HasGeo() {
			pt = geo.Point{Lat: tw.Geo.Lat, Lon: tw.Geo.Lon}
			break
		}
	}
	gpsUser, err := ds.Service.CreateUser("gps_profile_user",
		fmt.Sprintf("%.4f, %.4f", pt.Lat, pt.Lon), "ko", time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	gpsTweet, err := ds.Service.PostTweet(gpsUser.ID, "hello from home",
		time.Date(2011, 10, 2, 0, 0, 0, 0, time.UTC), &twitter.GeoTag{Lat: pt.Lat, Lon: pt.Lon})
	if err != nil {
		t.Fatal(err)
	}

	// twitterd: generous admission, seeded 5xx fault injection (retries).
	twStack := testStack("twitterd", daemon.OverloadConfig{MaxInflight: 64, QueueDepth: 32})
	twInj := fault.New(seed, fault.Rates{Error5xx: 0.25}, obs.NewRegistry())
	twStack.Mux.Handle("/", twInj.Handler(twitter.NewAPIServer(ds.Service, twitter.ServerOptions{})))
	twSrv := httptest.NewServer(twStack.Handler)
	defer twSrv.Close()

	// geocoded: a single admission slot so a held slot sheds deterministically.
	geoStack := testStack("geocoded", daemon.OverloadConfig{MaxInflight: 1, QueueDepth: -1})
	geoInj := fault.New(seed+1, fault.Rates{Error5xx: 0.2}, obs.NewRegistry())
	geoStack.Mux.Handle("/", geoInj.Handler(geocode.NewServer(ds.Gazetteer, geocode.ServerOptions{})))
	hold := make(chan struct{})
	held := make(chan struct{})
	geoStack.Mux.HandleFunc("/hold", func(w http.ResponseWriter, r *http.Request) {
		close(held)
		<-hold
	})
	geoSrv := httptest.NewServer(geoStack.Handler)
	defer geoSrv.Close()

	// The stir side: the stream engine wired like `stir stream -geocode`,
	// with the daemon stack's tracer feeding its /debug/trace ring.
	stirStack := testStack("stir-stream", daemon.OverloadConfig{MaxInflight: 64, QueueDepth: 32})
	stirSrv := httptest.NewServer(stirStack.Handler)
	defer stirSrv.Close()
	tc := twitter.NewClient(twSrv.URL)
	tc.HTTP = twSrv.Client()
	tc.Metrics = obs.NewRegistry()
	tc.Retry = fastPolicy("twitter_client", seed, 8, nil)
	gc := geocode.NewClient(geoSrv.URL, 4096)
	gc.HTTP = geoSrv.Client()
	gc.Metrics = obs.NewRegistry()
	gc.Retry = fastPolicy("geocode_client", seed, 8, nil)
	eng := testEngine(t, ds, func(c *Config) {
		c.Shards = 1 // serial profile legs: geocoded's single slot never sheds them
		c.Profiles = NewProfileResolver(ClientLookup(tc),
			textnorm.NewRefiner(ds.Gazetteer), gc, ds.Gazetteer)
		c.Trace = stirStack.Tracer
	})
	defer eng.Close()

	for _, tw := range allTweets(ds) {
		if !eng.Ingest(tw) {
			t.Fatal("Ingest refused a tweet on an open engine")
		}
	}
	eng.Drain()
	if !eng.Ingest(gpsTweet) {
		t.Fatal("Ingest refused the GPS-profile tweet")
	}
	eng.Drain()

	// The shed leg: occupy geocoded's only slot, then reverse-geocode under a
	// fresh root span. The first attempt is shed (503 + Retry-After traced on
	// geocoded), the first backoff releases the slot, the retry succeeds —
	// one logical request, shed + retry + success in one trace.
	go func() { _, _ = http.Get(geoSrv.URL + "/hold") }()
	<-held
	probeGC := geocode.NewClient(geoSrv.URL, 16)
	probeGC.HTTP = geoSrv.Client()
	probeGC.Metrics = obs.NewRegistry()
	probeGC.Retry = fastPolicy("geocode_probe", seed, 20, func() { close(hold) })
	pctx, root := stirStack.Tracer.Root(context.Background(), "chaos.probe")
	if root == nil {
		t.Fatal("probe root span not sampled at Sample=1")
	}
	if _, err := tc.UserShow(pctx, gpsUser.ID); err != nil {
		t.Fatalf("probe user lookup: %v", err)
	}
	if _, err := probeGC.Reverse(pctx, pt); err != nil {
		t.Fatalf("probe reverse geocode: %v", err)
	}
	root.End()

	// Scrape the three rings over HTTP and reassemble, as `stir trace` does.
	var recs []trace.Record
	for _, u := range []string{stirSrv.URL, twSrv.URL, geoSrv.URL} {
		recs = append(recs, fetchTraceRing(t, u)...)
	}
	forest := trace.BuildForest(recs)
	if len(forest) == 0 {
		t.Fatal("no traces reassembled from the daemon rings")
	}

	services := func(tr *trace.Trace) map[string]bool {
		m := map[string]bool{}
		for _, s := range tr.Services() {
			m[s] = true
		}
		return m
	}
	spansThree := func(tr *trace.Trace) bool {
		m := services(tr)
		return m["stir-stream"] && m["twitterd"] && m["geocoded"]
	}

	// The acceptance trace: a stream.profile root spanning all three daemons.
	var profileTrace *trace.Trace
	for _, tr := range forest {
		if tr.Find("stream.profile") != nil && spansThree(tr) {
			profileTrace = tr
			break
		}
	}
	if profileTrace == nil {
		t.Fatal("no stream.profile trace spans stir-stream, twitterd and geocoded")
	}
	prof := profileTrace.Find("stream.profile")
	pa := annotMap(prof.Rec)
	if pa["user"] == "" || pa["shard"] == "" || pa["outcome"] == "" {
		t.Fatalf("stream.profile stage annotations incomplete: %v", prof.Rec.Annots)
	}

	// The probe trace: shed + retry + admitted, one trace, three services.
	var probeTrace *trace.Trace
	for _, tr := range forest {
		if tr.Find("chaos.probe") != nil {
			probeTrace = tr
			break
		}
	}
	if probeTrace == nil || !spansThree(probeTrace) {
		t.Fatalf("probe trace missing or incomplete: %+v", probeTrace)
	}
	var sawShed, sawRetry, sawQueueWait bool
	var walk func(*trace.Node)
	walk = func(nd *trace.Node) {
		am := annotMap(nd.Rec)
		if _, ok := am["shed"]; ok && nd.Rec.Status == http.StatusServiceUnavailable {
			sawShed = true
		}
		for k := range am {
			if strings.HasPrefix(k, "retry.") {
				sawRetry = true
			}
		}
		if _, ok := am["queue_wait"]; ok {
			sawQueueWait = true
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	for _, r := range probeTrace.Roots {
		walk(r)
	}
	if !sawShed || !sawRetry || !sawQueueWait {
		var b bytes.Buffer
		trace.WriteForest(&b, []*trace.Trace{probeTrace})
		t.Fatalf("probe trace annotations: shed=%v retry=%v queue_wait=%v\n%s",
			sawShed, sawRetry, sawQueueWait, b.String())
	}

	// The rendered tree — what `stir trace` prints — shows all three hops.
	var b bytes.Buffer
	trace.WriteForest(&b, []*trace.Trace{profileTrace, probeTrace})
	out := b.String()
	for _, want := range []string{"stir-stream: stream.profile", "twitterd:", "geocoded:", "shed="} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, out)
		}
	}
}
