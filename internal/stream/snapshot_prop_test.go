package stream

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"stir/internal/obs"
	"stir/internal/storage"
	"stir/internal/storage/vfs"
	"stir/internal/twitter"
)

// Property: materialise-and-restore is lossless. For any seeded random
// workload — including snapshots cut mid-drain, while shard queues still
// hold undelivered tweets — rebuilding an engine from its checkpoint store
// and replaying the uncovered suffix reproduces the original groupings
// rank-for-rank and byte-for-byte, and a storage-level Snapshot/
// RestoreSnapshot of that store is equally faithful. This is the seam the
// cluster's shard handoff and crash recovery stand on.

func TestSnapshotRestorePropertyRandomWorkloads(t *testing.T) {
	const rounds = 6
	baseSeed := int64(20260808)
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("seed=%d", baseSeed+int64(round)), func(t *testing.T) {
			seed := baseSeed + int64(round)
			rnd := rand.New(rand.NewSource(seed))
			ds := testDataset(t, 150+rnd.Intn(200), seed)
			tweets := allTweets(ds)
			rnd.Shuffle(len(tweets), func(i, j int) { tweets[i], tweets[j] = tweets[j], tweets[i] })

			fs := vfs.NewMem(seed)
			store, err := storage.Open("ckpt", storage.Options{FS: fs, Metrics: obs.Discard})
			if err != nil {
				t.Fatal(err)
			}
			eng := testEngine(t, ds, func(c *Config) { c.Store = store })

			// Random workload: interleave ingest bursts with checkpoints. The
			// cut point is random, and the final checkpoint races live
			// ingestion from another goroutine, so some runs snapshot while
			// shard queues are mid-drain.
			cut := 1 + rnd.Intn(len(tweets)-1)
			i := 0
			for i < cut {
				n := 1 + rnd.Intn(400)
				if n > cut-i {
					n = cut - i
				}
				for _, tw := range tweets[i : i+n] {
					eng.Ingest(tw)
				}
				i += n
				if rnd.Intn(3) == 0 {
					if err := eng.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// The racing tail: feed a slice of post-cut tweets concurrently
			// with the final checkpoint, so the checkpoint's drain barrier
			// cuts through a live queue.
			racing := tweets[cut:]
			if len(racing) > 500 {
				racing = racing[:500]
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, tw := range racing {
					eng.Ingest(tw)
				}
			}()
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			eng.Drain()
			// A final checkpoint makes the store cover everything ingested;
			// the mid-drain one above already proved the barrier cut is safe.
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			want := mustJSON(t, eng.Snapshot())
			eng.Close()
			store.Close()

			// Path 1: reopen the store and rebuild.
			store2, err := storage.Open("ckpt", storage.Options{FS: fs, Metrics: obs.Discard})
			if err != nil {
				t.Fatal(err)
			}
			re := testEngine(t, ds, func(c *Config) { c.Store = store2 })
			if got := mustJSON(t, re.Snapshot()); !bytes.Equal(got, want) {
				t.Fatal("checkpoint-restored engine diverges from the original")
			}
			re.Close()

			// Path 2: storage-level Snapshot -> RestoreSnapshot -> rebuild.
			var backup bytes.Buffer
			if _, err := store2.Snapshot(&backup); err != nil {
				t.Fatal(err)
			}
			store2.Close()
			fs2 := vfs.NewMem(seed + 1)
			if _, err := storage.RestoreSnapshot("restored", bytes.NewReader(backup.Bytes()),
				storage.Options{FS: fs2, Metrics: obs.Discard}); err != nil {
				t.Fatal(err)
			}
			store3, err := storage.Open("restored", storage.Options{FS: fs2, Metrics: obs.Discard})
			if err != nil {
				t.Fatal(err)
			}
			re2 := testEngine(t, ds, func(c *Config) { c.Store = store3 })
			defer re2.Close()
			if got := mustJSON(t, re2.Snapshot()); !bytes.Equal(got, want) {
				t.Fatal("snapshot-restored engine diverges from the original")
			}
			// Rank-identity: every user's matched rank and group survive.
			orig := re2.Groupings()
			for _, g := range orig {
				view, ok := re2.User(twitter.UserID(g.UserID))
				if !ok || view.Rank != g.MatchedRank || view.Group != g.Group.String() {
					t.Fatalf("user %d rank/group drift after restore: %+v vs %+v", g.UserID, view, g)
				}
			}
		})
	}
}
