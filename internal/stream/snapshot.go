package stream

import (
	"sort"

	"stir/internal/core"
	"stir/internal/twitter"
)

// Snapshot is an on-demand materialisation of the live state in the batch
// pipeline's shape.
type Snapshot struct {
	// Groupings is the per-user method output, sorted by user ID — the same
	// order the batch pipeline emits.
	Groupings []core.UserGrouping
	// Analysis aggregates Groupings through core.Analyze, so a drained
	// engine's snapshot is byte-for-byte the batch result.
	Analysis core.Analysis
}

// Groupings collects every grouped user (≥1 geocoded tweet), sorted by ID.
// Shards are locked one at a time: each shard's view is consistent, the
// cross-shard cut is only as consistent as ingestion is quiet (Drain first
// for an exact cut).
func (e *Engine) Groupings() []core.UserGrouping {
	var out []core.UserGrouping
	for _, sh := range e.shards {
		sh.mu.Lock()
		for _, st := range sh.users {
			if st.total == 0 {
				continue
			}
			out = append(out, st.grouping())
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out
}

// Snapshot materialises the current per-user groupings and their §IV
// analysis.
func (e *Engine) Snapshot() Snapshot {
	span := e.tracer.Start("stream_snapshot")
	defer span.End()
	gs := e.Groupings()
	return Snapshot{Groupings: gs, Analysis: core.Analyze(gs)}
}

// UserView is the live per-user answer: group, rank and reliability weight.
type UserView struct {
	UserID            int64  `json:"user_id"`
	Profile           string `json:"profile"`
	Group             string `json:"group"`
	Rank              int    `json:"rank"`
	MatchedTweets     int    `json:"matched_tweets"`
	TotalTweets       int    `json:"total_tweets"`
	DistinctDistricts int    `json:"distinct_districts"`
	// Weight is the smooth reliability weight (§V): the fraction of the
	// user's geo-tweets posted from the profile district.
	Weight float64 `json:"weight"`
}

// User returns the live view of one user; ok=false when the user is unknown
// or was rejected by profile refinement.
func (e *Engine) User(id twitter.UserID) (UserView, bool) {
	sh := e.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.users[id]
	if !ok {
		return UserView{}, false
	}
	return UserView{
		UserID:            st.id,
		Profile:           st.profile.Key(),
		Group:             st.group.String(),
		Rank:              st.rank,
		MatchedTweets:     st.matchedTweets(),
		TotalTweets:       st.total,
		DistinctDistricts: len(st.nodes),
		Weight:            st.matchShare(),
	}, true
}

// GroupCounts is the cheap incremental per-group view (no snapshot build):
// user and tweet tallies maintained in O(1) per tweet.
func (e *Engine) GroupCounts() (users, tweets [core.NumGroups]int) {
	for _, sh := range e.shards {
		sh.mu.Lock()
		for g := 0; g < core.NumGroups; g++ {
			users[g] += sh.usersPerGroup[g]
			tweets[g] += sh.tweetsPerGroup[g]
		}
		sh.mu.Unlock()
	}
	return users, tweets
}
