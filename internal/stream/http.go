package stream

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"stir/internal/core"
	"stir/internal/obs"
	"stir/internal/twitter"
)

// Query API over the live engine:
//
//	GET /v1/groups          per-group §IV statistics from a fresh snapshot
//	GET /v1/users/{id}      one user's group, rank and reliability weight
//	GET /v1/stats           ingestion counters (processed, dropped, reconnects…)
//
// Mounted by `stir stream` alongside /metrics and /healthz.

type httpError struct {
	Error string `json:"error"`
}

type groupStatView struct {
	Group                string  `json:"group"`
	Users                int     `json:"users"`
	UserShare            float64 `json:"user_share"`
	Tweets               int     `json:"tweets"`
	TweetShare           float64 `json:"tweet_share"`
	AvgDistinctDistricts float64 `json:"avg_distinct_districts"`
	AvgMatchShare        float64 `json:"avg_match_share"`
}

type groupsResponse struct {
	Users               int             `json:"users"`
	Tweets              int             `json:"tweets"`
	Groups              []groupStatView `json:"groups"`
	OverallAvgDistricts float64         `json:"overall_avg_districts"`
	OverallMatchShare   float64         `json:"overall_match_share"`
}

// Handler returns the engine's query API, instrumented into the engine's
// metrics registry.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/groups", e.handleGroups)
	mux.HandleFunc("/v1/users/", e.handleUser)
	mux.HandleFunc("/v1/stats", e.handleStats)
	return obs.InstrumentHandler(e.reg, "stream", streamRoute, mux)
}

func streamRoute(r *http.Request) string {
	if strings.HasPrefix(r.URL.Path, "/v1/users/") {
		return "/v1/users/{id}"
	}
	return r.URL.Path
}

func jsonReply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (e *Engine) handleGroups(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "GET only"})
		return
	}
	snap := e.Snapshot()
	resp := groupsResponse{
		Users:               snap.Analysis.Users,
		Tweets:              snap.Analysis.Tweets,
		Groups:              make([]groupStatView, 0, core.NumGroups),
		OverallAvgDistricts: snap.Analysis.OverallAvgDistricts,
		OverallMatchShare:   snap.Analysis.OverallMatchShare,
	}
	for _, gs := range snap.Analysis.Groups {
		resp.Groups = append(resp.Groups, groupStatView{
			Group:                gs.Group.String(),
			Users:                gs.Users,
			UserShare:            gs.UserShare,
			Tweets:               gs.Tweets,
			TweetShare:           gs.TweetShare,
			AvgDistinctDistricts: gs.AvgDistinctDistricts,
			AvgMatchShare:        gs.AvgMatchShare,
		})
	}
	jsonReply(w, http.StatusOK, resp)
}

func (e *Engine) handleUser(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "GET only"})
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/users/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || idStr == "" {
		jsonReply(w, http.StatusBadRequest, httpError{Error: "invalid user id"})
		return
	}
	view, ok := e.User(twitter.UserID(id))
	if !ok {
		jsonReply(w, http.StatusNotFound, httpError{Error: "unknown user"})
		return
	}
	jsonReply(w, http.StatusOK, view)
}

func (e *Engine) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "GET only"})
		return
	}
	jsonReply(w, http.StatusOK, e.Stats())
}
