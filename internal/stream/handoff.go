package stream

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"stir/internal/storage"
	"stir/internal/twitter"
)

// Shard handoff: when the cluster router moves a set of users between
// workers (a worker joining, leaving, or being replaced after a crash), the
// state travels in the same encoding the checkpoint uses — one userRec per
// grouped user plus the rejection markers. ExportUsers/ImportUsers are the
// live HTTP path; ReadCheckpointHandoff lifts the same payload straight out
// of a dead worker's checkpoint store.

// Handoff is the wire form of a set of users' grouping state.
type Handoff struct {
	// Users holds one checkpoint-encoded userRec per grouped user.
	Users []json.RawMessage `json:"users,omitempty"`
	// Rejected lists users permanently filtered out by profile refinement.
	Rejected []int64 `json:"rejected,omitempty"`
}

// Len reports how many users (grouped + rejected) the handoff carries.
func (h Handoff) Len() int { return len(h.Users) + len(h.Rejected) }

// ExportUsers drains in-flight tweets and serialises every user keep()
// selects — grouped state and rejection markers both. The exported users
// stay live in this engine; pair with DropUsers once the importer has
// committed them.
func (e *Engine) ExportUsers(keep func(twitter.UserID) bool) (Handoff, error) {
	e.Drain()
	var h Handoff
	for _, sh := range e.shards {
		sh.mu.Lock()
		for id, st := range sh.users {
			if !keep(id) {
				continue
			}
			b, err := encodeUserState(st)
			if err != nil {
				sh.mu.Unlock()
				return Handoff{}, fmt.Errorf("stream: export user %d: %w", id, err)
			}
			h.Users = append(h.Users, b)
		}
		for id := range sh.rejected {
			if keep(id) {
				h.Rejected = append(h.Rejected, int64(id))
			}
		}
		sh.mu.Unlock()
	}
	// Deterministic wire order, so identical exports are byte-identical.
	sort.Slice(h.Users, func(i, j int) bool { return string(h.Users[i]) < string(h.Users[j]) })
	sort.Slice(h.Rejected, func(i, j int) bool { return h.Rejected[i] < h.Rejected[j] })
	return h, nil
}

// ImportUsers installs a handoff payload into this engine: every record is
// decoded first (a malformed payload imports nothing), then installed under
// the owning shard's lock and marked dirty so the next checkpoint persists
// it. An already-present user is replaced — the exporter's copy is at least
// as new, and a retried handoff must be idempotent.
func (e *Engine) ImportUsers(h Handoff) error {
	type decoded struct {
		sh *shard
		id twitter.UserID
		st *userState
	}
	states := make([]decoded, 0, len(h.Users))
	for _, raw := range h.Users {
		// Peek the ID to pick the shard whose priority stream seeds the treap.
		var peek struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal(raw, &peek); err != nil {
			return fmt.Errorf("stream: import: %w", err)
		}
		sh := e.shardOf(twitter.UserID(peek.ID))
		st, err := decodeUserState(raw, sh.rnd.next)
		if err != nil {
			return fmt.Errorf("stream: import: %w", err)
		}
		states = append(states, decoded{sh: sh, id: twitter.UserID(peek.ID), st: st})
	}
	for _, d := range states {
		d.sh.mu.Lock()
		if old := d.sh.users[d.id]; old != nil && old.total > 0 {
			d.sh.usersPerGroup[old.group]--
			d.sh.tweetsPerGroup[old.group] -= old.total
		}
		d.sh.users[d.id] = d.st
		if d.st.total > 0 {
			d.sh.usersPerGroup[d.st.group]++
			d.sh.tweetsPerGroup[d.st.group] += d.st.total
		}
		d.sh.dirty[d.id] = true
		d.sh.mu.Unlock()
	}
	for _, id := range h.Rejected {
		sh := e.shardOf(twitter.UserID(id))
		sh.mu.Lock()
		sh.rejected[twitter.UserID(id)] = true
		sh.dirty[twitter.UserID(id)] = true
		sh.mu.Unlock()
	}
	e.reg.Counter("stream_handoff_imported_total").Add(int64(h.Len()))
	return nil
}

// DropUsers removes every user drop() selects — the tail of a handoff: the
// importer owns them now. Removed users are marked dirty, so the next
// checkpoint deletes their keys from the store. Returns how many grouped and
// rejected users were dropped.
func (e *Engine) DropUsers(drop func(twitter.UserID) bool) (users, rejected int) {
	e.Drain()
	for _, sh := range e.shards {
		sh.mu.Lock()
		for id, st := range sh.users {
			if !drop(id) {
				continue
			}
			if st.total > 0 {
				sh.usersPerGroup[st.group]--
				sh.tweetsPerGroup[st.group] -= st.total
			}
			delete(sh.users, id)
			sh.dirty[id] = true
			users++
		}
		for id := range sh.rejected {
			if !drop(id) {
				continue
			}
			delete(sh.rejected, id)
			sh.dirty[id] = true
			rejected++
		}
		sh.mu.Unlock()
	}
	e.reg.Counter("stream_handoff_dropped_total").Add(int64(users + rejected))
	return users, rejected
}

// ReadCheckpointHandoff lifts a full handoff payload plus the durable replay
// cursor straight out of a checkpoint store — the recovery path for a worker
// that died without a chance to export: whoever inherits its shards restores
// from its last checkpoint and replays forward from the cursor.
func ReadCheckpointHandoff(store *storage.Store) (Handoff, string, error) {
	var h Handoff
	cursor := ""
	if b, err := store.Get(ckptMetaKey); err == nil {
		var meta ckptMeta
		if err := json.Unmarshal(b, &meta); err == nil {
			if meta.Version != ckptFormatVersion {
				return Handoff{}, "", fmt.Errorf("stream: unsupported checkpoint version %d", meta.Version)
			}
			cursor = meta.Cursor
		}
	}
	for _, key := range store.KeysWithPrefix(ckptUserPrefix) {
		b, err := store.Get(key)
		if err != nil {
			continue // salvage semantics match loadCheckpoint: skip the damaged record
		}
		h.Users = append(h.Users, json.RawMessage(b))
	}
	for _, key := range store.KeysWithPrefix(ckptRejectPrefix) {
		id, err := strconv.ParseInt(strings.TrimPrefix(key, ckptRejectPrefix), 10, 64)
		if err != nil {
			continue
		}
		h.Rejected = append(h.Rejected, id)
	}
	sort.Slice(h.Users, func(i, j int) bool { return string(h.Users[i]) < string(h.Users[j]) })
	sort.Slice(h.Rejected, func(i, j int) bool { return h.Rejected[i] < h.Rejected[j] })
	return h, cursor, nil
}
