package stream

import (
	"context"
	"errors"

	"stir/internal/admin"
	"stir/internal/core"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/textnorm"
	"stir/internal/twitter"
)

// UserLookup fetches one account — an in-process Service or the HTTP client.
type UserLookup func(ctx context.Context, id twitter.UserID) (*twitter.User, error)

// ServiceLookup adapts an in-process platform.
func ServiceLookup(svc *twitter.Service) UserLookup {
	return func(_ context.Context, id twitter.UserID) (*twitter.User, error) {
		return svc.User(id)
	}
}

// ClientLookup adapts the HTTP client SDK (retries and breaker included).
func ClientLookup(c *twitter.Client) UserLookup {
	return func(ctx context.Context, id twitter.UserID) (*twitter.User, error) {
		return c.UserShow(ctx, id)
	}
}

// NewProfileResolver builds the ProfileFunc mirroring the batch pipeline's
// refinement (pipeline.refineProfile): empty or meaningless profiles are
// rejected, well-defined names resolve through the refiner, GPS-in-profile
// goes through the geocoder and back to a unique gazetteer district. The
// decisions must match the batch path bit-for-bit — the differential tests
// depend on it.
func NewProfileResolver(lookup UserLookup, refiner *textnorm.Refiner, resolver geocode.Resolver, gaz *admin.Gazetteer) ProfileFunc {
	return func(ctx context.Context, id twitter.UserID) (core.Place, bool, error) {
		u, err := lookup(ctx, id)
		if err != nil {
			if twitter.IsNotFound(err) || errors.Is(err, twitter.ErrUserNotFound) {
				// A tweet from an account the platform no longer knows:
				// permanently unfilterable, like an empty profile.
				return core.Place{}, false, nil
			}
			return core.Place{}, false, err
		}
		if u.ProfileLocation == "" {
			return core.Place{}, false, nil
		}
		cls := refiner.Classify(u.ProfileLocation)
		switch cls.Quality {
		case textnorm.WellDefined:
			return core.Place{State: cls.District.State, County: cls.District.County}, true, nil
		case textnorm.GPSCoordinates:
			loc, err := resolver.Reverse(ctx, *cls.Point)
			if err != nil {
				if errors.Is(err, geocode.ErrNoMatch) {
					return core.Place{}, false, nil
				}
				return core.Place{}, false, err
			}
			ds := gaz.ResolveNameInState(loc.County, loc.State)
			if len(ds) != 1 {
				return core.Place{}, false, nil
			}
			return core.Place{State: ds[0].State, County: ds[0].County}, true, nil
		default:
			return core.Place{}, false, nil
		}
	}
}

// NewGazetteerResolver builds the same in-process reverse geocoder the batch
// pipeline runs on (pipeline.New): district point resolution with the given
// slack, behind the geocode cache.
func NewGazetteerResolver(gaz *admin.Gazetteer, slackKm float64) geocode.Resolver {
	if slackKm <= 0 {
		slackKm = 10
	}
	return geocode.NewDirectResolver(func(p geo.Point, slack float64) (geocode.Location, error) {
		d, err := gaz.ResolvePoint(p, slack)
		if err != nil {
			return geocode.Location{}, err
		}
		return geocode.Location{Country: d.Country, State: d.State, County: d.County}, nil
	}, slackKm, 65536)
}

// NewEmbeddedResolver builds the geofast-backed equivalent of
// NewGazetteerResolver: the gazetteer is compiled into a cell grid once and
// per-tweet resolution runs at memory speed, falling back to the exact
// R-tree walk only on boundary cells. Results are identical.
func NewEmbeddedResolver(gaz *admin.Gazetteer, slackKm float64) (*geocode.EmbeddedResolver, error) {
	if slackKm <= 0 {
		slackKm = 10
	}
	return geocode.CompileEmbedded(gaz, slackKm)
}
