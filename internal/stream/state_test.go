package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"stir/internal/core"
)

// somePlaces builds a small pool of distinct districts.
func somePlaces(n int) []core.Place {
	out := make([]core.Place, n)
	for i := range out {
		out[i] = core.Place{State: fmt.Sprintf("S%d", i%5), County: fmt.Sprintf("C%02d", i)}
	}
	return out
}

// TestObserveMatchesBatchGrouping drives random tweet sequences through
// userState and checks, after every single tweet, that grouping() equals
// core.BuildUserGrouping over the prefix applied so far — the O(log k)
// incremental update must never drift from the batch rebuild.
func TestObserveMatchesBatchGrouping(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	places := somePlaces(12)
	for trial := 0; trial < 50; trial++ {
		profile := places[rnd.Intn(len(places))]
		st := newUserState(int64(trial), profile)
		prio := &prioRNG{s: uint64(trial)*977 + 1}
		var applied []core.Place
		for i := 0; i < 60; i++ {
			p := places[rnd.Intn(len(places))]
			st.observe(p, prio.next)
			applied = append(applied, p)
			want := core.BuildUserGrouping(int64(trial), profile, applied)
			got := st.grouping()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d after %d tweets:\ngot  %+v\nwant %+v", trial, i+1, got, want)
			}
		}
	}
}

// TestObserveNeverMatched covers the None group: a profile district the user
// never tweets from keeps rank 0 at every step.
func TestObserveNeverMatched(t *testing.T) {
	places := somePlaces(4)
	st := newUserState(1, core.Place{State: "Elsewhere", County: "Nowhere"})
	prio := &prioRNG{s: 3}
	for i := 0; i < 20; i++ {
		st.observe(places[i%len(places)], prio.next)
		if st.rank != 0 || st.group != core.None {
			t.Fatalf("step %d: rank=%d group=%v, want 0/None", i, st.rank, st.group)
		}
	}
	if st.matchedTweets() != 0 || st.matchShare() != 0 {
		t.Fatalf("matched=%d share=%v, want zeros", st.matchedTweets(), st.matchShare())
	}
}

// TestOSRankAbsent checks the rank query's miss path.
func TestOSRankAbsent(t *testing.T) {
	var root *osNode
	prio := &prioRNG{s: 9}
	for i, p := range somePlaces(6) {
		n := &osNode{place: p, key: p.Key(), count: i + 1, prio: prio.next()}
		root = osInsert(root, n)
	}
	if r := osRank(root, 99, "S0#C00"); r != 0 {
		t.Fatalf("rank of absent key = %d, want 0", r)
	}
	if nsize(root) != 6 {
		t.Fatalf("size = %d, want 6", nsize(root))
	}
}

// TestOSRemoveKeepsOrder removes nodes in random order and checks the
// in-order walk stays sorted by (count desc, key asc) throughout.
func TestOSRemoveKeepsOrder(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	prio := &prioRNG{s: 20}
	var root *osNode
	nodes := make([]*osNode, 0, 30)
	for i, p := range somePlaces(30) {
		n := &osNode{place: p, key: p.Key(), count: 1 + i%7, prio: prio.next()}
		nodes = append(nodes, n)
		root = osInsert(root, n)
	}
	rnd.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	for _, n := range nodes {
		root = osRemove(root, n.count, n.key)
		prevCount, prevKey := 0, ""
		first := true
		osInorder(root, func(m *osNode) {
			if !first && !beforeCK(prevCount, prevKey, m.count, m.key) {
				t.Fatalf("order violated: (%d,%q) before (%d,%q)", prevCount, prevKey, m.count, m.key)
			}
			first = false
			prevCount, prevKey = m.count, m.key
		})
	}
	if root != nil {
		t.Fatal("treap not empty after removing everything")
	}
}

// TestCheckpointRoundTrip encodes a user and decodes them back identically.
func TestCheckpointRoundTrip(t *testing.T) {
	places := somePlaces(9)
	profile := places[2]
	st := newUserState(42, profile)
	prio := &prioRNG{s: 5}
	rnd := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		st.observe(places[rnd.Intn(len(places))], prio.next)
	}
	st.lastID = 777
	b, err := encodeUserState(st)
	if err != nil {
		t.Fatal(err)
	}
	prio2 := &prioRNG{s: 99} // different priorities must not change the order
	got, err := decodeUserState(b, prio2.next)
	if err != nil {
		t.Fatal(err)
	}
	if got.lastID != 777 {
		t.Fatalf("lastID = %d, want 777", got.lastID)
	}
	if !reflect.DeepEqual(got.grouping(), st.grouping()) {
		t.Fatalf("round-trip grouping differs:\ngot  %+v\nwant %+v", got.grouping(), st.grouping())
	}
}

// TestDecodeUserStateRejectsCorruption covers the checkpoint validation.
func TestDecodeUserStateRejectsCorruption(t *testing.T) {
	prio := &prioRNG{s: 1}
	if _, err := decodeUserState([]byte("{"), prio.next); err == nil {
		t.Fatal("want error for truncated JSON")
	}
	bad := []byte(`{"id":1,"ps":"A","pc":"B","places":[{"s":"A","c":"B","n":0}]}`)
	if _, err := decodeUserState(bad, prio.next); err == nil {
		t.Fatal("want error for non-positive count")
	}
	dup := []byte(`{"id":1,"ps":"A","pc":"B","places":[{"s":"A","c":"B","n":1},{"s":"A","c":"B","n":2}]}`)
	if _, err := decodeUserState(dup, prio.next); err == nil {
		t.Fatal("want error for duplicate place")
	}
}
