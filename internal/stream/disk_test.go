package stream

import (
	"testing"

	"stir/internal/leaktest"
	"stir/internal/obs"
	"stir/internal/storage"
	"stir/internal/storage/vfs"
)

// Disk-pressure behaviour (DESIGN.md §16): a checkpoint that cannot commit
// on a full disk is deferred — counted, cursor not advanced, dirty set
// restored — ingest keeps running memory-only up to the dirty-user window,
// then sheds, and the whole pipeline heals once space returns.
func TestCheckpointDefersOnDiskFullAndHeals(t *testing.T) {
	leaktest.Check(t)
	reg := obs.NewRegistry()
	flt := vfs.NewFault(vfs.FaultConfig{Seed: 9})
	store, err := storage.Open("ckpt", storage.Options{FS: flt, Metrics: obs.Discard})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	eng, _ := plainEngine(t, func(c *Config) {
		c.Store = store
		c.Metrics = reg
		c.MaxDirtyUsers = 2 // tiny memory-only window so the test can exhaust it
		c.DropWhenFull = true
	})

	// Two users dirty — exactly the window — and a cursor to (not) advance.
	if !eng.Ingest(geoTweet(1, 10, 1)) || !eng.Ingest(geoTweet(2, 20, 1)) {
		t.Fatal("ingest refused on a healthy engine")
	}
	eng.Drain()
	if got := eng.DirtyUsers(); got != 2 {
		t.Fatalf("DirtyUsers = %d, want 2", got)
	}
	eng.SetCursor("pos-1")

	flt.Mem().SetCapacity(1) // device full: nothing more allocates
	if err := eng.Checkpoint(); !vfs.IsNoSpace(err) {
		t.Fatalf("checkpoint on full disk: err = %v, want ErrNoSpace", err)
	}
	if got := reg.Counter("stream_checkpoint_deferred_total").Value(); got != 1 {
		t.Fatalf("stream_checkpoint_deferred_total = %v, want 1", got)
	}
	if got := eng.Stats().CheckpointsDeferred; got != 1 {
		t.Fatalf("Stats().CheckpointsDeferred = %d, want 1", got)
	}
	if got := eng.DurableCursor(); got != "" {
		t.Fatalf("deferred checkpoint advanced the cursor to %q", got)
	}
	if got := eng.DirtyUsers(); got != 2 {
		t.Fatalf("deferred checkpoint must restore the dirty set, got %d", got)
	}
	if !eng.Degraded() {
		t.Fatal("engine must report the store's disk degradation")
	}

	// Window exhausted: the stalled gate sheds (DropWhenFull) and counts it.
	if !eng.CheckpointStalled() {
		t.Fatal("CheckpointStalled must arm once deferrals meet a full window")
	}
	if eng.Ingest(geoTweet(3, 30, 1)) {
		t.Fatal("ingest accepted past the dirty-user window on a full disk")
	}
	if got := reg.Counter("stream_ingest_backpressure_total").Value(); got < 1 {
		t.Fatalf("stream_ingest_backpressure_total = %v, want >= 1", got)
	}

	// A retry on the still-full disk is one more deferral, not a crash.
	if err := eng.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded on a full disk")
	}
	if got := eng.Stats().CheckpointsDeferred; got != 2 {
		t.Fatalf("CheckpointsDeferred = %d, want 2", got)
	}

	// Space returns: recover the store, and the next checkpoint lands,
	// advances the cursor and reopens the ingest gate.
	flt.Mem().SetCapacity(0)
	if err := store.TryRecover(); err != nil {
		t.Fatalf("TryRecover after space freed: %v", err)
	}
	if eng.Degraded() {
		t.Fatal("engine still degraded after store recovery")
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
	if eng.CheckpointStalled() {
		t.Fatal("stalled flag survived a successful checkpoint")
	}
	if got := eng.DurableCursor(); got != "pos-1" {
		t.Fatalf("DurableCursor = %q, want pos-1", got)
	}
	if got := eng.DirtyUsers(); got != 0 {
		t.Fatalf("DirtyUsers = %d after checkpoint, want 0", got)
	}
	if !eng.Ingest(geoTweet(4, 40, 1)) {
		t.Fatal("ingest refused after heal")
	}
	eng.Drain()
	if got := eng.Stats().DiskDegraded; got {
		t.Fatal("Stats().DiskDegraded true after heal")
	}
}
