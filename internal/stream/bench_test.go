package stream

import (
	"context"
	"testing"

	"stir/internal/core"
	"stir/internal/obs"
	"stir/internal/twitter"
)

// BenchmarkStreamIngest measures sustained ingestion on the default 4-shard
// layout with no faults: pre-resolved profiles, a pre-warmed cache-shaped
// resolver, and users spread across shards. The acceptance floor for this
// subsystem is 100k tweets/sec with zero drops.
func BenchmarkStreamIngest(b *testing.B) {
	const users = 1024
	places := somePlaces(16)
	profiles := func(_ context.Context, id twitter.UserID) (core.Place, bool, error) {
		return places[int(id)%len(places)], true, nil
	}
	eng, err := New(Config{
		Shards:   4,
		Profiles: profiles,
		Resolver: echoResolver{},
		Metrics:  obs.Discard,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	tweets := make([]*twitter.Tweet, users)
	for i := range tweets {
		tweets[i] = geoTweet(int64(i), int64(i), float64(i%30))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Ingest(tweets[i%users])
	}
	eng.Drain()
	b.StopTimer()
	st := eng.Stats()
	if st.Dropped != 0 {
		b.Fatalf("dropped %d tweets under backpressure", st.Dropped)
	}
	if int(st.Processed) != b.N {
		b.Fatalf("processed %d of %d", st.Processed, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tweets/sec")
}
