package stream

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"stir/internal/obs"
	"stir/internal/storage"
)

// countUsers sums loaded user states across shards (engine not yet running).
func countUsers(e *Engine) int {
	n := 0
	for _, sh := range e.shards {
		n += len(sh.users)
	}
	return n
}

// TestCheckpointLoadSalvagesDamagedRecords: a checkpoint with damaged or
// alien records must not stop the engine from starting — bad records are
// dropped and counted, good ones restored.
func TestCheckpointLoadSalvagesDamagedRecords(t *testing.T) {
	ds := testDataset(t, 60, 31)
	tweets := allTweets(ds)
	store, err := storage.Open(filepath.Join(t.TempDir(), "ckpt"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	eng := testEngine(t, ds, func(c *Config) { c.Store = store })
	for _, tw := range tweets {
		eng.Ingest(tw)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	userKeys := store.KeysWithPrefix(ckptUserPrefix)
	if len(userKeys) < 3 {
		t.Fatalf("checkpoint too small to damage: %d user records", len(userKeys))
	}

	// Damage the checkpoint three ways: one user record that no longer
	// decodes, one key that is not a user id at all, and a meta record that
	// is not JSON.
	victim := userKeys[0]
	if err := store.Put(victim, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ckptUserPrefix+"not-a-number", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ckptMetaKey, []byte("####")); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	eng2 := testEngine(t, ds, func(c *Config) {
		c.Store = store
		c.Metrics = reg
	})
	defer eng2.Close()
	if got := reg.Counter("stream_checkpoint_salvage_dropped_total").Value(); got != 3 {
		t.Fatalf("salvage dropped = %d, want 3", got)
	}
	if got, want := countUsers(eng2), len(userKeys)-1; got != want {
		t.Fatalf("restored %d users, want %d", got, want)
	}
	// The damaged user is absent, a healthy one restored.
	victimID := strings.TrimPrefix(victim, ckptUserPrefix)
	for _, sh := range eng2.shards {
		for id := range sh.users {
			if strconv.FormatInt(int64(id), 10) == victimID {
				t.Fatalf("damaged user %s restored from garbage", victimID)
			}
		}
	}
	// Counters were in the damaged meta record: they restart from zero
	// rather than poisoning the run.
	if eng2.restored.Processed != 0 {
		t.Fatalf("restored counters from damaged meta: %+v", eng2.restored)
	}
	// The salvaged engine still ingests.
	eng2.Ingest(tweets[0])
	eng2.Drain()
}

// TestCheckpointVersionMismatchStaysFatal: a wrong format version is a
// configuration error, not damage — salvage must not paper over it.
func TestCheckpointVersionMismatchStaysFatal(t *testing.T) {
	ds := testDataset(t, 10, 32)
	store, err := storage.Open(filepath.Join(t.TempDir(), "ckpt"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Put(ckptMetaKey, []byte(`{"version":99}`)); err != nil {
		t.Fatal(err)
	}
	resolver := NewGazetteerResolver(ds.Gazetteer, 10)
	_, err = New(Config{
		Profiles: NewProfileResolver(ServiceLookup(ds.Service), nil, resolver, ds.Gazetteer),
		Resolver: resolver,
		Store:    store,
	})
	if err == nil || !strings.Contains(err.Error(), "unsupported checkpoint version") {
		t.Fatalf("version mismatch err = %v", err)
	}
}
