// Package stream is STIR's live-ingestion subsystem: it consumes the
// Streaming API (the access path of the paper's worldwide "Lady Gaga"
// dataset, §IV) and keeps the §III grouping analysis continuously up to
// date. Tweets fan out to user-hash-sharded workers over bounded channels;
// each shard holds its users' incremental grouping state, so one tweet costs
// O(log k) (an order-statistic treap update plus a rank query) instead of a
// full re-analysis. The engine reconnects through a resilience policy with
// backoff and a breaker, checkpoints shard state atomically through
// internal/storage for crash-safe resume, publishes stream_* metrics via
// internal/obs, and answers live queries (per-group statistics, per-user
// group/rank/reliability-weight) over a small HTTP API.
//
// Correctness anchor: after draining any tweet sequence, Snapshot() is
// byte-for-byte equal to batch core.Analyze over the same tweets — the
// differential tests enforce this, including across checkpoint/resume.
package stream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stir/internal/core"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/resilience"
	"stir/internal/storage"
	"stir/internal/twitter"
)

// Defaults applied by New when Config leaves the fields zero.
const (
	DefaultShards = 4
	DefaultBuffer = 1024
	// DefaultMaxDirtyUsers bounds how many users may hold un-checkpointed
	// state while checkpoints are deferred on a full disk before Ingest
	// applies backpressure (see Config.MaxDirtyUsers).
	DefaultMaxDirtyUsers = 100_000
)

// ProfileFunc resolves a user's profile district: ok=false means the profile
// is not well-defined (the user is permanently filtered out, like the batch
// funnel's attrition); an error is transient and the user is retried on
// their next tweet.
type ProfileFunc func(ctx context.Context, id twitter.UserID) (core.Place, bool, error)

// Config configures an Engine.
type Config struct {
	// Shards is the worker count; tweets route by user-ID hash so one user's
	// ordering is preserved (default 4).
	Shards int
	// Buffer is each shard's channel capacity (default 1024).
	Buffer int
	// DropWhenFull sheds load instead of blocking when a shard's queue is
	// full; drops are counted per shard. Default false: Ingest blocks, which
	// backpressures the stream reader.
	DropWhenFull bool
	// DedupByTweetID skips tweets whose ID is not above the user's last
	// applied ID — safe only when delivery replays in nondecreasing global
	// ID order (e.g. a replayed firehose after reconnect). Default off.
	DedupByTweetID bool
	// Profiles resolves profile districts (required).
	Profiles ProfileFunc
	// Resolver reverse-geocodes tweet GPS points (required).
	Resolver geocode.Resolver
	// Seed fixes the treap-priority and shard-hash streams (default 1).
	Seed int64
	// Store, when set, enables Checkpoint/resume: New loads any existing
	// "stream/" state from it.
	Store *storage.Store
	// CheckpointEvery makes Run checkpoint on this period (requires Store).
	CheckpointEvery time.Duration
	// MaxDirtyUsers bounds the memory-only window while checkpoints are
	// deferred on a full disk: once this many users carry un-checkpointed
	// state, Ingest sheds (DropWhenFull) or blocks until a checkpoint
	// lands. 0 means DefaultMaxDirtyUsers; only meaningful with Store.
	MaxDirtyUsers int
	// Reconnect overrides Run's connect retry policy (backoff + breaker on
	// stream refusals). Nil builds a default policy.
	Reconnect *resilience.Policy
	// Metrics receives the stream_* series (nil means obs.Default;
	// obs.Discard disables).
	Metrics *obs.Registry
	// Trace, when set, opens a distributed root span per cold-user profile
	// resolution (the twitterd → geocoded leg) and per checkpoint. The hot
	// per-tweet path stays untraced — at firehose rates a span per tweet
	// would be all overhead and no signal. Nil disables.
	Trace *trace.Tracer
}

// Source is one streaming connection attempt: deliver tweets to fn until the
// stream ends (nil) or breaks (error). fn returning false stops the stream.
// *twitter.Client composes via ClientSource.
type Source interface {
	Stream(ctx context.Context, fn func(*twitter.Tweet) bool) error
}

// shardMsg is one queue element: a tweet, or a barrier the worker closes
// when it reaches it (FIFO makes that a drain point).
type shardMsg struct {
	tweet   *twitter.Tweet
	barrier chan struct{}
}

// shard owns a partition of the user space. The worker goroutine is the only
// tweet processor; mu serialises it against snapshots and checkpoints.
type shard struct {
	id int
	ch chan shardMsg

	mu       sync.Mutex
	users    map[twitter.UserID]*userState
	rejected map[twitter.UserID]bool
	dirty    map[twitter.UserID]bool // changed since last checkpoint
	rnd      prioRNG

	// Funnel counters, guarded by mu (drops is atomic: Ingest writes it
	// from outside the worker).
	processed   int64
	nonGeo      int64
	geocodeFail int64
	profileErr  int64
	resolveErr  int64
	duplicates  int64
	drops       atomic.Int64

	// Incremental per-group tallies: cheap integer views the HTTP layer and
	// gauges read without materialising a full snapshot.
	usersPerGroup  [core.NumGroups]int
	tweetsPerGroup [core.NumGroups]int
}

// Engine is the live ingestion engine. All methods are safe for concurrent
// use; Close stops the workers (Ingest afterwards reports a drop).
type Engine struct {
	cfg    Config
	reg    *obs.Registry
	tracer *obs.Tracer
	shards []*shard

	ctx    context.Context // bounds resolver/profile calls; dies at Close
	cancel context.CancelFunc
	done   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once

	ckptMu sync.Mutex

	// cursor is an opaque source position a feeder (the cluster router)
	// stamps after handing the engine a batch; it rides the checkpoint so a
	// resumed engine can tell its feeder where to replay from.
	curMu         sync.Mutex
	cursor        string
	durableCursor string

	// Connection-level counters (Run).
	reconnects  atomic.Int64
	disconnects atomic.Int64
	connectFail atomic.Int64
	checkpoints atomic.Int64
	ingested    atomic.Int64

	// Disk-pressure state: ckptStalled is set while checkpoints are being
	// deferred on ErrNoSpace/ErrReadOnly and cleared by the next one that
	// commits; deferrals counts the skips ("checkpoint skipped, cursor not
	// advanced" — the replay window a crash right now would cost).
	ckptStalled atomic.Bool
	deferrals   atomic.Int64

	// Counters restored from a checkpoint, folded into Stats.
	restored restoredCounters

	mIngested []*obs.Counter
	mDropped  []*obs.Counter
}

type restoredCounters struct {
	Processed   int64 `json:"processed"`
	NonGeo      int64 `json:"non_geo"`
	GeocodeFail int64 `json:"geocode_failures"`
	ProfileErr  int64 `json:"profile_errors"`
	ResolveErr  int64 `json:"resolve_errors"`
	Duplicates  int64 `json:"duplicates"`
	Dropped     int64 `json:"dropped"`
}

// New builds an engine, loads any checkpoint present in cfg.Store, registers
// its gauges and starts the shard workers.
func New(cfg Config) (*Engine, error) {
	if cfg.Profiles == nil || cfg.Resolver == nil {
		return nil, errors.New("stream: Config.Profiles and Config.Resolver are required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	reg := obs.Or(cfg.Metrics)
	e := &Engine{
		cfg:    cfg,
		reg:    reg,
		tracer: obs.NewTracer(reg),
		done:   make(chan struct{}),
	}
	e.ctx, e.cancel = context.WithCancel(context.Background())
	e.shards = make([]*shard, cfg.Shards)
	e.mIngested = make([]*obs.Counter, cfg.Shards)
	e.mDropped = make([]*obs.Counter, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{
			id:       i,
			ch:       make(chan shardMsg, cfg.Buffer),
			users:    make(map[twitter.UserID]*userState),
			rejected: make(map[twitter.UserID]bool),
			dirty:    make(map[twitter.UserID]bool),
			rnd:      prioRNG{s: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(i)},
		}
		lbl := strconv.Itoa(i)
		e.mIngested[i] = reg.Counter("stream_ingested_total", "shard", lbl)
		e.mDropped[i] = reg.Counter("stream_dropped_total", "shard", lbl)
	}
	if cfg.Store != nil {
		if err := e.loadCheckpoint(); err != nil {
			return nil, err
		}
	}
	e.registerGauges()
	for _, sh := range e.shards {
		e.wg.Add(1)
		go e.worker(sh)
	}
	return e, nil
}

// registerGauges publishes pull-mode views of live state.
func (e *Engine) registerGauges() {
	e.reg.GaugeFunc("stream_users", func() float64 {
		n := 0
		for _, sh := range e.shards {
			sh.mu.Lock()
			n += len(sh.users)
			sh.mu.Unlock()
		}
		return float64(n)
	})
	for _, g := range core.Groups() {
		g := g
		e.reg.GaugeFunc("stream_group_users", func() float64 {
			n := 0
			for _, sh := range e.shards {
				sh.mu.Lock()
				n += sh.usersPerGroup[g]
				sh.mu.Unlock()
			}
			return float64(n)
		}, "group", g.String())
	}
	for _, sh := range e.shards {
		sh := sh
		e.reg.GaugeFunc("stream_queue_depth", func() float64 {
			return float64(len(sh.ch))
		}, "shard", strconv.Itoa(sh.id))
	}
}

// shardOf routes a user to their shard: a mixed hash so sequential IDs
// spread evenly.
func (e *Engine) shardOf(id twitter.UserID) *shard {
	return e.shards[splitmix64(uint64(id))%uint64(len(e.shards))]
}

// Ingest queues one tweet for processing and reports whether it was
// accepted. With DropWhenFull it never blocks: a full shard queue counts a
// drop. Otherwise it blocks — the backpressure that slows the stream
// reader down to processing speed — failing only when the engine closes.
func (e *Engine) Ingest(t *twitter.Tweet) bool {
	select {
	case <-e.done:
		// A closed engine refuses deterministically — without this check the
		// select below could still win a buffered send.
		return false
	default:
	}
	sh := e.shardOf(t.UserID)
	if e.CheckpointStalled() {
		// Checkpoints are deferred on a full disk and the memory-only
		// window is exhausted: shed (DropWhenFull) or hold the reader back
		// until a checkpoint lands and shrinks the dirty set.
		e.reg.Counter("stream_ingest_backpressure_total").Inc()
		if e.cfg.DropWhenFull {
			sh.drops.Add(1)
			e.mDropped[sh.id].Inc()
			return false
		}
		for e.CheckpointStalled() {
			select {
			case <-e.done:
				return false
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	msg := shardMsg{tweet: t}
	if e.cfg.DropWhenFull {
		select {
		case sh.ch <- msg:
			e.ingested.Add(1)
			e.mIngested[sh.id].Inc()
			return true
		case <-e.done:
			return false
		default:
			sh.drops.Add(1)
			e.mDropped[sh.id].Inc()
			return false
		}
	}
	select {
	case sh.ch <- msg:
		e.ingested.Add(1)
		e.mIngested[sh.id].Inc()
		return true
	case <-e.done:
		return false
	}
}

// SetCursor records an opaque source position (e.g. the cluster router's
// forward sequence) covering every tweet ingested before the call. It is
// persisted with the next checkpoint, so after a crash the feeder replays
// from DurableCursor and DedupByTweetID makes the overlap idempotent.
func (e *Engine) SetCursor(c string) {
	e.curMu.Lock()
	e.cursor = c
	e.curMu.Unlock()
}

// Cursor returns the latest position stamped with SetCursor (volatile: it
// may be ahead of what any checkpoint holds).
func (e *Engine) Cursor() string {
	e.curMu.Lock()
	defer e.curMu.Unlock()
	return e.cursor
}

// DurableCursor returns the source position covered by the last committed
// checkpoint — the safe replay point after a crash. Empty means "replay
// everything".
func (e *Engine) DurableCursor() string {
	e.curMu.Lock()
	defer e.curMu.Unlock()
	return e.durableCursor
}

// Ingested reports how many tweets this session accepted into shard queues
// (checkpoint-restored totals are not included). Traffic drivers replaying
// into a best-effort firehose use it for flow control: the sample stream
// sheds when the subscriber lags, so a replay that outruns this counter is
// losing tweets upstream of the engine.
func (e *Engine) Ingested() int64 { return e.ingested.Load() }

// DirtyUsers counts users whose state changed since the last committed
// checkpoint — the replay window a crash right now would cost, and the
// quantity the MaxDirtyUsers backpressure window bounds.
func (e *Engine) DirtyUsers() int {
	n := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		n += len(sh.dirty)
		sh.mu.Unlock()
	}
	return n
}

// CheckpointStalled reports that checkpoints are being deferred on a full
// disk AND the dirty-user window is exhausted — the point where ingest must
// stop accepting writes it cannot make durable. A cluster worker refuses
// ingest (503) on this signal so the router defers to its journal.
func (e *Engine) CheckpointStalled() bool {
	if !e.ckptStalled.Load() {
		return false
	}
	max := e.cfg.MaxDirtyUsers
	if max <= 0 {
		max = DefaultMaxDirtyUsers
	}
	return e.DirtyUsers() >= max
}

// Degraded reports whether the checkpoint store is in read-only
// disk-degraded mode (always false without a store). Workers report it on
// hello; daemons flip readiness on it.
func (e *Engine) Degraded() bool {
	return e.cfg.Store != nil && e.cfg.Store.Degraded()
}

// noteDeferred accounts one skipped checkpoint: the cursor did not advance,
// and the stalled flag arms the dirty-user backpressure window.
func (e *Engine) noteDeferred() {
	e.ckptStalled.Store(true)
	e.deferrals.Add(1)
	e.reg.Counter("stream_checkpoint_deferred_total").Inc()
}

func (e *Engine) worker(sh *shard) {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case msg := <-sh.ch:
			if msg.barrier != nil {
				close(msg.barrier)
				continue
			}
			e.process(sh, msg.tweet)
		}
	}
}

// process applies one tweet to its shard's state, mirroring the batch
// pipeline's per-user path: profile refinement gate, then tweet geocoding,
// then the incremental grouping update.
func (e *Engine) process(sh *shard, t *twitter.Tweet) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !t.HasGeo() {
		sh.nonGeo++
		e.reg.Counter("stream_nongeo_total").Inc()
		return
	}
	if sh.rejected[t.UserID] {
		return
	}
	st := sh.users[t.UserID]
	if st == nil {
		// Cold user: the profile leg fans out over HTTP (twitterd user lookup,
		// geocoded reverse for GPS-in-profile), so it gets a distributed root
		// span — the trace the acceptance run reassembles across daemons.
		pctx, sp := e.cfg.Trace.Root(e.ctx, "stream.profile")
		if sp != nil {
			sp.AnnotateInt("user", int64(t.UserID))
			sp.AnnotateInt("shard", int64(sh.id))
		}
		place, ok, err := e.cfg.Profiles(pctx, t.UserID)
		if err != nil {
			// Transient: leave the user unknown so their next tweet retries.
			sh.profileErr++
			e.reg.Counter("stream_profile_errors_total").Inc()
			if sp != nil {
				sp.Annotate("outcome", "error")
				sp.Annotate("error", err.Error())
				sp.End()
			}
			return
		}
		if !ok {
			sh.rejected[t.UserID] = true
			sh.dirty[t.UserID] = true
			e.reg.Counter("stream_profile_rejected_total").Inc()
			sp.Annotate("outcome", "rejected")
			sp.End()
			return
		}
		sp.Annotate("outcome", "admitted")
		sp.End()
		st = newUserState(int64(t.UserID), place)
		sh.users[t.UserID] = st
	}
	if e.cfg.DedupByTweetID && int64(t.ID) <= st.lastID {
		sh.duplicates++
		e.reg.Counter("stream_duplicates_total").Inc()
		return
	}
	loc, err := e.cfg.Resolver.Reverse(e.ctx, geo.Point{Lat: t.Geo.Lat, Lon: t.Geo.Lon})
	if err != nil {
		if errors.Is(err, geocode.ErrNoMatch) {
			sh.geocodeFail++
			e.reg.Counter("stream_geocode_failures_total").Inc()
		} else {
			sh.resolveErr++
			e.reg.Counter("stream_resolve_errors_total").Inc()
		}
		return
	}
	oldTotal, oldGroup := st.total, st.group
	st.observe(core.Place{State: loc.State, County: loc.County}, sh.rnd.next)
	st.lastID = int64(t.ID)
	switch {
	case oldTotal == 0:
		sh.usersPerGroup[st.group]++
		sh.tweetsPerGroup[st.group] += st.total
	case oldGroup != st.group:
		sh.usersPerGroup[oldGroup]--
		sh.usersPerGroup[st.group]++
		sh.tweetsPerGroup[oldGroup] -= oldTotal
		sh.tweetsPerGroup[st.group] += st.total
	default:
		sh.tweetsPerGroup[st.group]++
	}
	sh.processed++
	sh.dirty[t.UserID] = true
	e.reg.Counter("stream_processed_total").Inc()
}

// Drain blocks until every tweet enqueued before the call has been
// processed: a barrier rides each shard's FIFO queue.
func (e *Engine) Drain() {
	barriers := make([]chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		b := make(chan struct{})
		select {
		case sh.ch <- shardMsg{barrier: b}:
			barriers[i] = b
		case <-e.done:
		}
	}
	for _, b := range barriers {
		if b == nil {
			continue
		}
		select {
		case <-b:
		case <-e.done:
		}
	}
}

// Close drains outstanding work, stops the workers and releases the
// engine's context. The in-memory state stays readable (Snapshot, User).
func (e *Engine) Close() {
	e.closed.Do(func() {
		e.Drain()
		close(e.done)
		e.wg.Wait()
		e.cancel()
	})
}

// errEmptyStream marks a connection that ended without delivering anything —
// treated as a refusal so backoff and the breaker engage.
var errEmptyStream = errors.New("stream: connection ended before delivering any tweet")

// Run consumes src until ctx dies, reconnecting forever: a connection that
// delivered tweets and then dropped reconnects immediately with fresh
// backoff, while consecutive refusals back off exponentially, feed the
// breaker and eventually exhaust the policy (Run then returns the error).
// Returns nil when ctx is cancelled. With Store and CheckpointEvery set,
// state checkpoints on that period.
func (e *Engine) Run(ctx context.Context, src Source) error {
	pol := e.cfg.Reconnect
	if pol == nil {
		pol = &resilience.Policy{
			Name:        "stream_connect",
			MaxAttempts: 8,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    10 * time.Second,
			Seed:        e.cfg.Seed,
			Breaker:     resilience.NewBreaker("stream", resilience.BreakerOptions{Metrics: e.reg}),
			Metrics:     e.reg,
		}
	}
	if e.cfg.Store != nil && e.cfg.CheckpointEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(e.cfg.CheckpointEvery)
			defer t.Stop()
			// Deferral backoff: a disk-full checkpoint failure skips the
			// next `backoff` ticks (doubling, capped) instead of hammering
			// a device that cannot accept writes. Each skipped attempt is
			// counted; the cursor holds still until one commits.
			skip, backoff := 0, 1
			for {
				select {
				case <-t.C:
					if skip > 0 {
						skip--
						continue
					}
					if e.cfg.Store.Degraded() {
						// A degraded store rejects every write; compaction
						// is the only way back, so try to reclaim space
						// before attempting the checkpoint.
						if err := e.cfg.Store.TryRecover(); err != nil {
							e.noteDeferred()
							skip = backoff
							if backoff < 8 {
								backoff *= 2
							}
							continue
						}
					}
					if err := e.Checkpoint(); err != nil {
						if isDiskFull(err) {
							// Checkpoint counted the deferral; here only
							// the pacing backs off.
							skip = backoff
							if backoff < 8 {
								backoff *= 2
							}
						} else {
							e.reg.Counter("stream_checkpoint_errors_total").Inc()
						}
						continue
					}
					backoff = 1
				case <-stop:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		err := pol.Do(ctx, func(ctx context.Context) error {
			delivered := false
			serr := src.Stream(ctx, func(t *twitter.Tweet) bool {
				delivered = true
				e.Ingest(t)
				return true
			})
			if ctx.Err() != nil {
				return nil
			}
			if delivered {
				// The connection worked; a drop after traffic reconnects
				// with fresh backoff rather than consuming attempts.
				e.disconnects.Add(1)
				e.reg.Counter("stream_disconnects_total").Inc()
				return nil
			}
			if serr == nil {
				serr = resilience.MarkTransient(errEmptyStream)
			}
			e.connectFail.Add(1)
			e.reg.Counter("stream_connect_failures_total").Inc()
			return serr
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("stream: connect: %w", err)
		}
		if ctx.Err() != nil {
			return nil
		}
		e.reconnects.Add(1)
		e.reg.Counter("stream_reconnects_total").Inc()
	}
}

// ClientSource adapts *twitter.Client to Source.
type ClientSource struct {
	Client *twitter.Client
	// Track optionally filters the sample stream by substring.
	Track string
}

// Stream implements Source.
func (s *ClientSource) Stream(ctx context.Context, fn func(*twitter.Tweet) bool) error {
	return s.Client.Stream(ctx, s.Track, fn)
}

// Stats is the engine's funnel and connection accounting.
type Stats struct {
	Shards          int     `json:"shards"`
	Users           int     `json:"users"`
	RejectedUsers   int     `json:"rejected_users"`
	Ingested        int64   `json:"ingested"`
	Processed       int64   `json:"processed"`
	NonGeo          int64   `json:"non_geo"`
	GeocodeFailures int64   `json:"geocode_failures"`
	ProfileErrors   int64   `json:"profile_errors"`
	ResolveErrors   int64   `json:"resolve_errors"`
	Duplicates      int64   `json:"duplicates"`
	Dropped         int64   `json:"dropped"`
	PerShardDropped []int64 `json:"per_shard_dropped"`
	Reconnects      int64   `json:"reconnects"`
	Disconnects     int64   `json:"disconnects"`
	ConnectFailures int64   `json:"connect_failures"`
	Checkpoints     int64   `json:"checkpoints"`

	// Disk-pressure accounting: checkpoints skipped on a full disk (cursor
	// not advanced), the users a crash would replay, and whether the
	// checkpoint store is currently read-only degraded.
	CheckpointsDeferred int64 `json:"checkpoints_deferred"`
	DirtyUsers          int   `json:"dirty_users"`
	DiskDegraded        bool  `json:"disk_degraded"`
}

// Stats returns current counters, including totals restored from a
// checkpoint.
func (e *Engine) Stats() Stats {
	s := Stats{
		Shards:          len(e.shards),
		PerShardDropped: make([]int64, len(e.shards)),
		Ingested:        e.ingested.Load(),
		Processed:       e.restored.Processed,
		NonGeo:          e.restored.NonGeo,
		GeocodeFailures: e.restored.GeocodeFail,
		ProfileErrors:   e.restored.ProfileErr,
		ResolveErrors:   e.restored.ResolveErr,
		Duplicates:      e.restored.Duplicates,
		Dropped:         e.restored.Dropped,
		Reconnects:      e.reconnects.Load(),
		Disconnects:     e.disconnects.Load(),
		ConnectFailures: e.connectFail.Load(),
		Checkpoints:     e.checkpoints.Load(),

		CheckpointsDeferred: e.deferrals.Load(),
		DirtyUsers:          e.DirtyUsers(),
		DiskDegraded:        e.Degraded(),
	}
	for i, sh := range e.shards {
		sh.mu.Lock()
		s.Users += len(sh.users)
		s.RejectedUsers += len(sh.rejected)
		s.Processed += sh.processed
		s.NonGeo += sh.nonGeo
		s.GeocodeFailures += sh.geocodeFail
		s.ProfileErrors += sh.profileErr
		s.ResolveErrors += sh.resolveErr
		s.Duplicates += sh.duplicates
		sh.mu.Unlock()
		d := sh.drops.Load()
		s.PerShardDropped[i] = d
		s.Dropped += d
	}
	return s
}
