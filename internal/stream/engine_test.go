package stream

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"stir/internal/core"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/obs"
	"stir/internal/resilience"
	"stir/internal/twitter"
)

// fixedProfiles resolves every user to the same place and counts calls.
type fixedProfiles struct {
	place core.Place
	calls atomic.Int64
	block chan struct{} // when set, resolve waits here first
	fail  atomic.Bool
}

func (f *fixedProfiles) fn(ctx context.Context, id twitter.UserID) (core.Place, bool, error) {
	f.calls.Add(1)
	if f.block != nil {
		<-f.block
	}
	if f.fail.Load() {
		return core.Place{}, false, errors.New("profile backend down")
	}
	return f.place, true, nil
}

// echoResolver maps every point to a place keyed by its integer latitude.
type echoResolver struct{}

func (echoResolver) Reverse(_ context.Context, p geo.Point) (geocode.Location, error) {
	if p.Lat < 0 {
		return geocode.Location{}, geocode.ErrNoMatch
	}
	return geocode.Location{State: "S", County: "C"}, nil
}

func geoTweet(id, user int64, lat float64) *twitter.Tweet {
	return &twitter.Tweet{ID: twitter.TweetID(id), UserID: twitter.UserID(user),
		Geo: &twitter.GeoTag{Lat: lat, Lon: 1}}
}

func plainEngine(t *testing.T, mutate func(*Config)) (*Engine, *fixedProfiles) {
	t.Helper()
	prof := &fixedProfiles{place: core.Place{State: "S", County: "C"}}
	cfg := Config{
		Shards:   1,
		Profiles: prof.fn,
		Resolver: echoResolver{},
		Metrics:  obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng, prof
}

func TestNewRequiresDeps(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error without Profiles/Resolver")
	}
}

func TestDropWhenFull(t *testing.T) {
	eng, prof := plainEngine(t, func(c *Config) {
		c.Buffer = 1
		c.DropWhenFull = true
	})
	prof.block = make(chan struct{})
	// First tweet occupies the worker (blocked in the profile resolve),
	// second fills the queue, third must be shed.
	if !eng.Ingest(geoTweet(1, 10, 1)) {
		t.Fatal("first ingest refused")
	}
	for prof.calls.Load() == 0 { // wait until the worker holds tweet 1
		time.Sleep(time.Millisecond)
	}
	if !eng.Ingest(geoTweet(2, 10, 1)) {
		t.Fatal("second ingest refused with an empty queue slot")
	}
	if eng.Ingest(geoTweet(3, 10, 1)) {
		t.Fatal("third ingest accepted beyond capacity")
	}
	close(prof.block) // closed channel: later resolves pass straight through
	eng.Drain()
	st := eng.Stats()
	if st.Dropped != 1 || st.PerShardDropped[0] != 1 {
		t.Fatalf("dropped = %d (%v), want 1", st.Dropped, st.PerShardDropped)
	}
	if st.Processed != 2 {
		t.Fatalf("processed = %d, want 2", st.Processed)
	}
	if st.Ingested != 2 || eng.Ingested() != 2 {
		t.Fatalf("ingested = %d, want 2 (drops must not count)", st.Ingested)
	}
}

func TestIngestAfterCloseRefuses(t *testing.T) {
	eng, _ := plainEngine(t, nil)
	eng.Close()
	if eng.Ingest(geoTweet(1, 1, 1)) {
		t.Fatal("ingest accepted after Close")
	}
}

func TestProfileCachedPerUser(t *testing.T) {
	eng, prof := plainEngine(t, nil)
	for i := int64(0); i < 10; i++ {
		eng.Ingest(geoTweet(i, 7, 1))
	}
	eng.Drain()
	if got := prof.calls.Load(); got != 1 {
		t.Fatalf("profile resolved %d times for one user, want 1", got)
	}
}

func TestTransientProfileErrorRetries(t *testing.T) {
	eng, prof := plainEngine(t, nil)
	prof.fail.Store(true)
	eng.Ingest(geoTweet(1, 7, 1))
	eng.Drain()
	if st := eng.Stats(); st.ProfileErrors != 1 || st.Users != 0 {
		t.Fatalf("after transient failure: %+v", st)
	}
	// The backend recovers; the user's next tweet retries and lands.
	prof.fail.Store(false)
	eng.Ingest(geoTweet(2, 7, 1))
	eng.Drain()
	st := eng.Stats()
	if st.Users != 1 || st.Processed != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
	if prof.calls.Load() != 2 {
		t.Fatalf("profile calls = %d, want 2", prof.calls.Load())
	}
}

func TestGeocodeFailureCounted(t *testing.T) {
	eng, _ := plainEngine(t, nil)
	eng.Ingest(geoTweet(1, 7, -5)) // negative latitude → ErrNoMatch
	eng.Ingest(geoTweet(2, 7, 1))
	eng.Ingest(&twitter.Tweet{ID: 3, UserID: 7}) // no geo tag
	eng.Drain()
	st := eng.Stats()
	if st.GeocodeFailures != 1 || st.Processed != 1 || st.NonGeo != 1 {
		t.Fatalf("stats %+v", st)
	}
	v, ok := eng.User(7)
	if !ok || v.TotalTweets != 1 || v.Group != "Top-1" || v.Rank != 1 || v.Weight != 1 {
		t.Fatalf("user view %+v ok=%v", v, ok)
	}
}

func TestDedupByTweetID(t *testing.T) {
	eng, _ := plainEngine(t, func(c *Config) { c.DedupByTweetID = true })
	eng.Ingest(geoTweet(5, 7, 1))
	eng.Ingest(geoTweet(5, 7, 1)) // replayed
	eng.Ingest(geoTweet(4, 7, 1)) // older ID
	eng.Ingest(geoTweet(6, 7, 1)) // fresh
	eng.Drain()
	st := eng.Stats()
	if st.Processed != 2 || st.Duplicates != 2 {
		t.Fatalf("stats %+v, want 2 processed / 2 duplicates", st)
	}
}

func TestGroupCountsTrackSnapshot(t *testing.T) {
	ds := testDataset(t, 300, 3)
	eng := testEngine(t, ds, nil)
	defer eng.Close()
	for _, tw := range allTweets(ds) {
		eng.Ingest(tw)
	}
	eng.Drain()
	users, tweets := eng.GroupCounts()
	snap := eng.Snapshot()
	for g := 0; g < core.NumGroups; g++ {
		if users[g] != snap.Analysis.Groups[g].Users {
			t.Fatalf("group %d users: incremental %d, snapshot %d", g, users[g], snap.Analysis.Groups[g].Users)
		}
		if tweets[g] != snap.Analysis.Groups[g].Tweets {
			t.Fatalf("group %d tweets: incremental %d, snapshot %d", g, tweets[g], snap.Analysis.Groups[g].Tweets)
		}
	}
}

func TestRunGivesUpAfterPolicyExhaustion(t *testing.T) {
	eng, _ := plainEngine(t, func(c *Config) {
		c.Reconnect = &resilience.Policy{
			Name:        "stream_test",
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			Metrics:     obs.NewRegistry(),
			Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		}
	})
	src := srcFunc(func(ctx context.Context, fn func(*twitter.Tweet) bool) error {
		return nil // connects, delivers nothing, ends
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := eng.Run(ctx, src)
	if err == nil {
		t.Fatal("Run should fail once the connect policy is exhausted")
	}
	if st := eng.Stats(); st.ConnectFailures == 0 {
		t.Fatalf("no connect failures recorded: %+v", st)
	}
}

type srcFunc func(ctx context.Context, fn func(*twitter.Tweet) bool) error

func (f srcFunc) Stream(ctx context.Context, fn func(*twitter.Tweet) bool) error { return f(ctx, fn) }
