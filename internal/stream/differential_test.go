package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"stir"
	"stir/internal/geocode"
	"stir/internal/obs"
	"stir/internal/storage"
	"stir/internal/textnorm"
	"stir/internal/twitter"
)

// The correctness anchor: after draining any tweet sequence, the engine's
// incremental groupings and analysis must be byte-for-byte equal to the batch
// pipeline over the same data — in any delivery order, and across a
// checkpoint/kill/resume.

func testDataset(t testing.TB, users int, seed int64) *stir.Dataset {
	t.Helper()
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Users: users, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func allTweets(ds *stir.Dataset) []*twitter.Tweet {
	var out []*twitter.Tweet
	ds.Service.EachTweet(func(tw *twitter.Tweet) bool {
		out = append(out, tw)
		return true
	})
	return out
}

// testEngine builds an engine wired exactly like the batch pipeline: same
// refiner, same direct resolver (slack 10), same gazetteer narrowing.
func testEngine(t testing.TB, ds *stir.Dataset, mutate func(*Config)) *Engine {
	t.Helper()
	resolver := NewGazetteerResolver(ds.Gazetteer, 10)
	cfg := Config{
		Profiles: NewProfileResolver(ServiceLookup(ds.Service),
			textnorm.NewRefiner(ds.Gazetteer), resolver, ds.Gazetteer),
		Resolver: resolver,
		Metrics:  obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// mustJSON marshals for the byte-for-byte comparison.
func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func assertMatchesBatch(t *testing.T, eng *Engine, res *stir.Result) {
	t.Helper()
	snap := eng.Snapshot()
	if !reflect.DeepEqual(snap.Groupings, res.Groupings) {
		t.Fatalf("groupings diverge: stream %d users, batch %d users",
			len(snap.Groupings), len(res.Groupings))
	}
	if got, want := mustJSON(t, snap.Analysis), mustJSON(t, res.Analysis); !bytes.Equal(got, want) {
		t.Fatalf("analysis not byte-for-byte equal:\nstream %s\nbatch  %s", got, want)
	}
	if got, want := mustJSON(t, snap.Groupings), mustJSON(t, res.Groupings); !bytes.Equal(got, want) {
		t.Fatal("groupings not byte-for-byte equal")
	}
}

func TestStreamMatchesBatchAnalyze(t *testing.T) {
	ds := testDataset(t, 600, 7)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	// Shuffled delivery: the incremental result must not depend on order.
	rand.New(rand.NewSource(42)).Shuffle(len(tweets), func(i, j int) {
		tweets[i], tweets[j] = tweets[j], tweets[i]
	})
	eng := testEngine(t, ds, nil)
	defer eng.Close()
	for _, tw := range tweets {
		if !eng.Ingest(tw) {
			t.Fatal("Ingest refused a tweet on an open engine")
		}
	}
	eng.Drain()
	assertMatchesBatch(t, eng, res)

	st := eng.Stats()
	if st.Dropped != 0 {
		t.Fatalf("dropped %d tweets with backpressure on", st.Dropped)
	}
	if want := res.Funnel.FinalGeoTweets; int(st.Processed) != want {
		t.Fatalf("processed %d geo tweets, batch funnel says %d", st.Processed, want)
	}
}

func TestStreamCheckpointResumeMatchesBatch(t *testing.T) {
	ds := testDataset(t, 500, 21)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	store, err := storage.Open(filepath.Join(t.TempDir(), "ckpt"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Phase 1: ingest a prefix, checkpoint, then keep feeding a doomed
	// engine whose post-checkpoint work must be invisible after resume.
	cut := len(tweets) / 2
	doomed := testEngine(t, ds, func(c *Config) { c.Store = store })
	for _, tw := range tweets[:cut] {
		doomed.Ingest(tw)
	}
	if err := doomed.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, tw := range tweets[cut : cut+cut/2] {
		doomed.Ingest(tw)
	}
	doomed.Close() // crash: the uncheckpointed suffix is lost

	// Phase 2: a fresh engine resumes from the checkpoint and replays
	// everything after the cut.
	eng := testEngine(t, ds, func(c *Config) { c.Store = store })
	defer eng.Close()
	for _, tw := range tweets[cut:] {
		eng.Ingest(tw)
	}
	eng.Drain()
	assertMatchesBatch(t, eng, res)
	if got, want := int(eng.Stats().Processed), res.Funnel.FinalGeoTweets; got != want {
		t.Fatalf("restored+live processed = %d, want %d", got, want)
	}

	// A second checkpoint from the resumed engine must also round-trip.
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	again := testEngine(t, ds, func(c *Config) { c.Store = store })
	defer again.Close()
	assertMatchesBatch(t, again, res)
}

// TestStreamEmbeddedMatchesBatchAndHTTP is the geofast acceptance
// differential: the same shuffled firehose drained through (a) an engine on
// the embedded grid resolver and (b) an engine on the HTTP client against a
// Fast geocoded server must both produce groupings and analysis
// byte-for-byte equal to the batch pipeline's R-tree path.
func TestStreamEmbeddedMatchesBatchAndHTTP(t *testing.T) {
	ds := testDataset(t, 500, 13)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	rand.New(rand.NewSource(99)).Shuffle(len(tweets), func(i, j int) {
		tweets[i], tweets[j] = tweets[j], tweets[i]
	})

	drain := func(resolver geocode.Resolver) *Engine {
		t.Helper()
		cfg := Config{
			Profiles: NewProfileResolver(ServiceLookup(ds.Service),
				textnorm.NewRefiner(ds.Gazetteer), resolver, ds.Gazetteer),
			Resolver: resolver,
			Metrics:  obs.NewRegistry(),
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tw := range tweets {
			if !eng.Ingest(tw) {
				t.Fatal("Ingest refused a tweet on an open engine")
			}
		}
		eng.Drain()
		return eng
	}

	// Embedded grid resolver: the in-process memory-speed path.
	embedded, err := NewEmbeddedResolver(ds.Gazetteer, 10)
	if err != nil {
		t.Fatal(err)
	}
	eng := drain(embedded)
	defer eng.Close()
	assertMatchesBatch(t, eng, res)
	if st := embedded.Grid().Stats(); st.Lookups == 0 {
		t.Fatal("embedded engine never consulted the grid")
	}

	// HTTP client against a grid-accelerated geocoded server: the metered
	// path with the same grid behind it.
	srv := httptest.NewServer(geocode.NewServer(ds.Gazetteer, geocode.ServerOptions{Fast: true}))
	defer srv.Close()
	httpEng := drain(geocode.NewClient(srv.URL, 65536))
	defer httpEng.Close()
	assertMatchesBatch(t, httpEng, res)
}
