package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"stir/internal/leaktest"
	"stir/internal/obs"
	"stir/internal/resilience"
	"stir/internal/resilience/fault"
	"stir/internal/twitter"
)

// replayServer serves the whole collection as NDJSON on every connection, in
// ascending tweet-ID order, but a seeded schedule truncates most connections
// partway — sometimes mid-line — so the client sees dropped streams and
// garbage tails. Completions (a connection that served everything) are
// signalled on done.
type replayServer struct {
	tweets []*twitter.Tweet
	mu     sync.Mutex
	rnd    *rand.Rand
	conns  int
	done   chan struct{}
}

func (s *replayServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	flusher := w.(http.Flusher)
	w.WriteHeader(http.StatusOK)
	n := len(s.tweets)
	cut := n
	s.mu.Lock()
	s.conns++
	// The first connections always die partway (forcing reconnect + replay
	// dedup); later ones survive 1 time in 4.
	truncated := s.conns <= 2 || s.rnd.Intn(4) != 0
	if truncated {
		cut = n/2 + s.rnd.Intn(n/2)
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, t := range s.tweets[:cut] {
		if err := enc.Encode(t); err != nil {
			return
		}
	}
	if truncated {
		// Half a record, then the connection drops: the decode-skip path.
		b, _ := json.Marshal(s.tweets[cut-1])
		w.Write(b[:len(b)/2])
		flusher.Flush()
		return
	}
	flusher.Flush()
	select {
	case s.done <- struct{}{}:
	default:
	}
}

// TestStreamChaosReconnectConverges runs the engine against a stream source
// that drops, resets, 5xxes and corrupts under the seeded fault injector.
// With replayed delivery and tweet-ID dedup, the incremental state must
// converge to the batch result once a connection finally survives end to end.
func TestStreamChaosReconnectConverges(t *testing.T) {
	leaktest.Check(t) // the reconnect loop and shard workers must all drain
	ds := testDataset(t, 300, 5)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	sort.Slice(tweets, func(i, j int) bool { return tweets[i].ID < tweets[j].ID })

	seed := fault.SeedFromEnv(2026)
	replay := &replayServer{tweets: tweets, rnd: rand.New(rand.NewSource(seed)), done: make(chan struct{}, 1)}
	inj := fault.New(seed, fault.Rates{Error5xx: 0.2, Reset: 0.2}, obs.NewRegistry())
	srv := httptest.NewServer(inj.Handler(replay))
	defer srv.Close()

	client := twitter.NewClient(srv.URL)
	client.HTTP = srv.Client()
	client.Metrics = obs.NewRegistry()

	eng := testEngine(t, ds, func(c *Config) {
		c.DedupByTweetID = true
		c.Reconnect = &resilience.Policy{
			Name:        "stream_chaos",
			MaxAttempts: 500,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			Seed:        seed,
			Metrics:     obs.NewRegistry(),
			Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		}
	})
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(ctx, &ClientSource{Client: client}) }()

	want := mustJSON(t, res.Analysis)
	deadline := time.After(30 * time.Second)
	converged := false
	for !converged {
		select {
		case <-deadline:
			t.Fatalf("no convergence: stats %+v", eng.Stats())
		case <-time.After(10 * time.Millisecond):
		}
		eng.Drain()
		snap := eng.Snapshot()
		converged = reflect.DeepEqual(snap.Groupings, res.Groupings) &&
			bytes.Equal(mustJSON(t, snap.Analysis), want)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := eng.Stats()
	if st.Reconnects == 0 {
		t.Fatalf("chaos run never reconnected: %+v", st)
	}
	if st.Duplicates == 0 {
		t.Fatalf("replayed stream produced no dedup hits: %+v", st)
	}
}
