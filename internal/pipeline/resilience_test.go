package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/obs"
	"stir/internal/twitter"
)

// failingResolver fails any point at failLat and optionally slows the rest,
// counting every call.
type failingResolver struct {
	next    geocode.Resolver
	failLat float64
	slow    time.Duration
	calls   atomic.Int64
}

func (r *failingResolver) Reverse(ctx context.Context, p geo.Point) (geocode.Location, error) {
	r.calls.Add(1)
	if p.Lat == r.failLat {
		return geocode.Location{}, errors.New("resolver infrastructure down")
	}
	if r.slow > 0 {
		select {
		case <-ctx.Done():
			return geocode.Location{}, ctx.Err()
		case <-time.After(r.slow):
		}
	}
	return r.next.Reverse(ctx, p)
}

// poisonedDataset builds n well-defined users with one geo tweet each; the
// lowest-ID user's tweet sits at a point the failing resolver rejects.
func poisonedDataset(t *testing.T, gaz *admin.Gazetteer, n int) (map[twitter.UserID]*twitter.User, map[twitter.UserID][]*twitter.Tweet, twitter.UserID, float64) {
	t.Helper()
	svc := twitter.NewService()
	yangcheon, err := gaz.ByID("KR/Seoul/Yangcheon-gu")
	if err != nil {
		t.Fatal(err)
	}
	jung, err := gaz.ByID("KR/Seoul/Jung-gu")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := svc.CreateUser("bad", "Seoul Jung-gu", "ko", t0)
	if err != nil {
		t.Fatal(err)
	}
	svc.PostTweet(bad.ID, "poisoned", t0, &twitter.GeoTag{Lat: jung.Center.Lat, Lon: jung.Center.Lon})
	for i := 1; i < n; i++ {
		u, err := svc.CreateUser(fmt.Sprintf("u%d", i), "Seoul Yangcheon-gu", "ko", t0)
		if err != nil {
			t.Fatal(err)
		}
		svc.PostTweet(u.ID, "home", t0, &twitter.GeoTag{Lat: yangcheon.Center.Lat, Lon: yangcheon.Center.Lon})
	}
	users, tweets := CollectFromService(svc)
	return users, tweets, bad.ID, jung.Center.Lat
}

func TestContinueOnErrorSkipsFailingUser(t *testing.T) {
	gaz := koreaGaz(t)
	users, tweets, badID, badLat := poisonedDataset(t, gaz, 8)

	strict := New(gaz, 10)
	strict.Obs = obs.Discard
	strict.Resolver = &failingResolver{next: strict.Resolver, failLat: badLat}
	if _, err := strict.Run(context.Background(), users, tweets); err == nil {
		t.Fatal("strict mode must abort on a resolver infrastructure error")
	}

	reg := obs.NewRegistry()
	degraded := New(gaz, 10)
	degraded.Obs = reg
	degraded.ContinueOnError = true
	degraded.Resolver = &failingResolver{next: degraded.Resolver, failLat: badLat}
	res, err := degraded.Run(context.Background(), users, tweets)
	if err != nil {
		t.Fatalf("degraded mode should complete: %v", err)
	}
	if len(res.SkippedUsers) != 1 || res.SkippedUsers[0] != badID {
		t.Fatalf("SkippedUsers = %v, want [%d]", res.SkippedUsers, badID)
	}
	if res.Funnel.SkippedUsers != 1 {
		t.Fatalf("Funnel.SkippedUsers = %d, want 1", res.Funnel.SkippedUsers)
	}
	if res.Funnel.FinalUsers != 7 {
		t.Fatalf("FinalUsers = %d, want 7", res.Funnel.FinalUsers)
	}
	if m, ok := reg.Snapshot().Get(FunnelMetric, "stage", "skipped_users"); !ok || m.Value != 1 {
		t.Fatalf("funnel gauge skipped_users = %+v ok=%v, want 1", m, ok)
	}
}

// Degraded parallel runs must match the sequential run exactly — same skips,
// same groupings — regardless of worker count.
func TestContinueOnErrorParallelMatchesSequential(t *testing.T) {
	gaz := koreaGaz(t)
	users, tweets, badID, badLat := poisonedDataset(t, gaz, 24)

	run := func(workers int) *Result {
		p := New(gaz, 10)
		p.Obs = obs.Discard
		p.ContinueOnError = true
		p.Parallelism = workers
		p.Resolver = &failingResolver{next: p.Resolver, failLat: badLat}
		res, err := p.Run(context.Background(), users, tweets)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if len(seq.SkippedUsers) != 1 || seq.SkippedUsers[0] != badID {
		t.Fatalf("sequential SkippedUsers = %v", seq.SkippedUsers)
	}
	if len(par.SkippedUsers) != len(seq.SkippedUsers) || par.SkippedUsers[0] != seq.SkippedUsers[0] {
		t.Fatalf("parallel SkippedUsers = %v, want %v", par.SkippedUsers, seq.SkippedUsers)
	}
	if len(par.Groupings) != len(seq.Groupings) {
		t.Fatalf("parallel groupings = %d, sequential = %d", len(par.Groupings), len(seq.Groupings))
	}
	for i := range par.Groupings {
		if par.Groupings[i].UserID != seq.Groupings[i].UserID {
			t.Fatalf("grouping %d: parallel user %d vs sequential %d", i, par.Groupings[i].UserID, seq.Groupings[i].UserID)
		}
	}
	if par.Funnel.FinalUsers != seq.Funnel.FinalUsers || par.Funnel.SkippedUsers != seq.Funnel.SkippedUsers {
		t.Fatalf("funnels diverge: parallel %+v sequential %+v", par.Funnel, seq.Funnel)
	}
}

// In strict parallel mode the dispatcher must stop feeding users once a
// worker has failed, instead of marching the whole ID list through a doomed
// run.
func TestParallelDispatchStopsAfterFailure(t *testing.T) {
	gaz := koreaGaz(t)
	const n = 200
	users, tweets, _, badLat := poisonedDataset(t, gaz, n)

	fr := &failingResolver{failLat: badLat, slow: 2 * time.Millisecond}
	p := New(gaz, 10)
	p.Obs = obs.Discard
	p.Parallelism = 4
	fr.next = p.Resolver
	p.Resolver = fr
	if _, err := p.Run(context.Background(), users, tweets); err == nil {
		t.Fatal("strict parallel run must fail")
	}
	// The poisoned user is the first dispatched and fails immediately while
	// every healthy resolve takes 2ms; a cancelled dispatcher strands most
	// of the 200 IDs. Without the stop channel all 200 are resolved.
	if calls := fr.calls.Load(); calls >= n {
		t.Fatalf("resolver saw %d calls; dispatcher kept feeding after failure", calls)
	}
}
