package pipeline

import (
	"context"
	"testing"

	"stir/internal/obs"
)

// TestFunnelGauges locks the acceptance criterion that every Funnel field is
// mirrored one-to-one into stir_funnel stage gauges on the run's registry.
func TestFunnelGauges(t *testing.T) {
	gaz := koreaGaz(t)
	users, tweets := handBuilt(t, gaz)
	reg := obs.NewRegistry()
	p := New(gaz, 10)
	p.Obs = reg
	res, err := p.Run(context.Background(), users, tweets)
	if err != nil {
		t.Fatal(err)
	}

	f := res.Funnel
	snap := reg.Snapshot()
	want := map[string]int{
		"raw_users":          f.RawUsers,
		"raw_tweets":         f.RawTweets,
		"empty_profiles":     f.EmptyProfiles,
		"well_defined_users": f.WellDefinedUsers,
		"geo_tweets":         f.GeoTweets,
		"final_users":        f.FinalUsers,
		"final_geo_tweets":   f.FinalGeoTweets,
		"geocode_failures":   f.GeocodeFailures,
	}
	for stage, v := range want {
		m, ok := snap.Get(FunnelMetric, "stage", stage)
		if !ok || m.Value != float64(v) {
			t.Errorf("stir_funnel{stage=%q} = %+v ok=%v, want %d", stage, m, ok, v)
		}
	}
	for q, n := range f.ProfileBreakdown {
		m, ok := snap.Get(FunnelProfileMetric, "quality", q.String())
		if !ok || m.Value != float64(n) {
			t.Errorf("stir_funnel_profile{quality=%q} = %+v ok=%v, want %d", q, m, ok, n)
		}
	}

	// The run's stages land in the stage histogram under dotted paths.
	for _, stage := range []string{"pipeline", "pipeline.count", "pipeline.users", "pipeline.analyze"} {
		m, ok := snap.Get(obs.StageHistogram, "stage", stage)
		if !ok || m.Count != 1 {
			t.Errorf("%s{stage=%q} = %+v ok=%v, want 1 observation", obs.StageHistogram, stage, m, ok)
		}
	}

	// The in-process resolver's cache is registered under cache="pipeline".
	if _, ok := snap.Get("geocode_cache_hits", "cache", "pipeline"); !ok {
		t.Error("resolver cache metrics not registered on the run registry")
	}
}

// TestFunnelGaugesRepeatedRuns verifies a second run replaces, not
// accumulates, the funnel gauges.
func TestFunnelGaugesRepeatedRuns(t *testing.T) {
	gaz := koreaGaz(t)
	users, tweets := handBuilt(t, gaz)
	reg := obs.NewRegistry()
	p := New(gaz, 10)
	p.Obs = reg
	var f Funnel
	for i := 0; i < 2; i++ {
		res, err := p.Run(context.Background(), users, tweets)
		if err != nil {
			t.Fatal(err)
		}
		f = res.Funnel
	}
	m, ok := reg.Snapshot().Get(FunnelMetric, "stage", "raw_users")
	if !ok || m.Value != float64(f.RawUsers) {
		t.Fatalf("after two runs stir_funnel{stage=raw_users} = %+v ok=%v, want %d", m, ok, f.RawUsers)
	}
}
