package pipeline

import (
	"stir/internal/geocode"
	"stir/internal/geofast"
	"stir/internal/obs"
)

// FunnelMetric is the gauge family holding the §III attrition funnel; each
// Funnel field becomes one series labelled by stage.
const FunnelMetric = "stir_funnel"

// FunnelProfileMetric breaks the profile-quality counts out per quality label.
const FunnelProfileMetric = "stir_funnel_profile"

// publishFunnel mirrors every Funnel field into gauges so a /metrics scrape
// during or after a run reports the same numbers Run returns. The stage
// labels correspond one-to-one with the Funnel struct fields.
func publishFunnel(reg *obs.Registry, f Funnel) {
	stages := []struct {
		stage string
		v     int
	}{
		{"raw_users", f.RawUsers},
		{"raw_tweets", f.RawTweets},
		{"empty_profiles", f.EmptyProfiles},
		{"well_defined_users", f.WellDefinedUsers},
		{"geo_tweets", f.GeoTweets},
		{"final_users", f.FinalUsers},
		{"final_geo_tweets", f.FinalGeoTweets},
		{"geocode_failures", f.GeocodeFailures},
		{"skipped_users", f.SkippedUsers},
	}
	for _, s := range stages {
		reg.Gauge(FunnelMetric, "stage", s.stage).Set(float64(s.v))
	}
	for q, n := range f.ProfileBreakdown {
		reg.Gauge(FunnelProfileMetric, "quality", q.String()).Set(float64(n))
	}
}

// registerResolverMetrics exposes the resolver's cache stats when the
// resolver can report them (DirectResolver and the geocode HTTP client both
// can). GaugeFunc re-registration replaces, so repeated runs are safe.
func registerResolverMetrics(reg *obs.Registry, r geocode.Resolver) {
	if p, ok := r.(geocode.StatsProvider); ok {
		geocode.RegisterCacheMetrics(reg, "pipeline", p)
	}
	if e, ok := r.(*geocode.EmbeddedResolver); ok {
		geofast.RegisterMetrics(reg, "pipeline", e.Grid())
	}
}
