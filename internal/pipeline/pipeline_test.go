package pipeline

import (
	"context"
	"testing"
	"time"

	"stir/internal/admin"
	"stir/internal/core"
	"stir/internal/synth"
	"stir/internal/textnorm"
	"stir/internal/twitter"
)

var t0 = time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)

func koreaGaz(t testing.TB) *admin.Gazetteer {
	t.Helper()
	g, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// handBuilt constructs a tiny dataset with known expected outcomes.
func handBuilt(t *testing.T, gaz *admin.Gazetteer) (map[twitter.UserID]*twitter.User, map[twitter.UserID][]*twitter.Tweet) {
	t.Helper()
	svc := twitter.NewService()
	mk := func(loc string) *twitter.User {
		u, err := svc.CreateUser("u", loc, "ko", t0)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	yangcheon, err := gaz.ByID("KR/Seoul/Yangcheon-gu")
	if err != nil {
		t.Fatal(err)
	}
	jung, err := gaz.ByID("KR/Seoul/Jung-gu")
	if err != nil {
		t.Fatal(err)
	}
	geoAt := func(d *admin.District) *twitter.GeoTag {
		return &twitter.GeoTag{Lat: d.Center.Lat, Lon: d.Center.Lon}
	}

	// u1: well-defined profile, 2 geo tweets at home + 1 away → Top-1.
	u1 := mk("Seoul Yangcheon-gu")
	svc.PostTweet(u1.ID, "a", t0, geoAt(yangcheon))
	svc.PostTweet(u1.ID, "b", t0, geoAt(yangcheon))
	svc.PostTweet(u1.ID, "c", t0, geoAt(jung))
	svc.PostTweet(u1.ID, "no geo", t0, nil)

	// u2: well-defined profile, all tweets away → None.
	u2 := mk("양천구")
	svc.PostTweet(u2.ID, "d", t0, geoAt(jung))

	// u3: well-defined profile, no geo tweets → dropped at the geo filter.
	u3 := mk("Yangcheon-gu")
	svc.PostTweet(u3.ID, "e", t0, nil)

	// u4: vague profile → dropped at refinement.
	u4 := mk("my home")
	svc.PostTweet(u4.ID, "f", t0, geoAt(jung))

	// u5: empty profile → counted as empty.
	u5 := mk("")
	svc.PostTweet(u5.ID, "g", t0, geoAt(jung))

	// u6: GPS coordinates in the profile resolving to Yangcheon-gu, one geo
	// tweet at home → Top-1 via the GPS-profile path.
	u6 := mk("37.5172, 126.8664")
	svc.PostTweet(u6.ID, "h", t0, geoAt(yangcheon))

	// u7: insufficient profile.
	u7 := mk("Seoul")
	svc.PostTweet(u7.ID, "i", t0, geoAt(jung))

	return CollectFromService(svc)
}

func TestPipelineHandBuilt(t *testing.T) {
	gaz := koreaGaz(t)
	users, tweets := handBuilt(t, gaz)
	p := New(gaz, 10)
	res, err := p.Run(context.Background(), users, tweets)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Funnel
	if f.RawUsers != 7 {
		t.Fatalf("RawUsers = %d", f.RawUsers)
	}
	if f.RawTweets != 10 {
		t.Fatalf("RawTweets = %d", f.RawTweets)
	}
	if f.GeoTweets != 8 {
		t.Fatalf("GeoTweets = %d", f.GeoTweets)
	}
	if f.EmptyProfiles != 1 {
		t.Fatalf("EmptyProfiles = %d", f.EmptyProfiles)
	}
	// Well-defined: u1, u2, u3 (text) + u6 (gps profile) = 4.
	if f.WellDefinedUsers != 4 {
		t.Fatalf("WellDefinedUsers = %d", f.WellDefinedUsers)
	}
	if f.ProfileBreakdown[textnorm.Vague] != 1 || f.ProfileBreakdown[textnorm.Insufficient] != 1 {
		t.Fatalf("breakdown = %v", f.ProfileBreakdown)
	}
	// Final: u1, u2, u6 (u3 has no geo tweet).
	if f.FinalUsers != 3 {
		t.Fatalf("FinalUsers = %d", f.FinalUsers)
	}
	if f.FinalGeoTweets != 5 {
		t.Fatalf("FinalGeoTweets = %d", f.FinalGeoTweets)
	}
	if len(res.Groupings) != 3 || len(res.ProfileDistrict) != 3 {
		t.Fatalf("groupings = %d, profiles = %d", len(res.Groupings), len(res.ProfileDistrict))
	}
	a := res.Analysis
	if a.Stat(core.Top1).Users != 2 {
		t.Fatalf("Top1 users = %d, want 2 (u1, u6)", a.Stat(core.Top1).Users)
	}
	if a.Stat(core.None).Users != 1 {
		t.Fatalf("None users = %d, want 1 (u2)", a.Stat(core.None).Users)
	}
}

func TestPipelineMinGeoTweets(t *testing.T) {
	gaz := koreaGaz(t)
	users, tweets := handBuilt(t, gaz)
	p := New(gaz, 10)
	p.MinGeoTweets = 2
	res, err := p.Run(context.Background(), users, tweets)
	if err != nil {
		t.Fatal(err)
	}
	// Only u1 has ≥2 geo tweets.
	if res.Funnel.FinalUsers != 1 {
		t.Fatalf("FinalUsers = %d, want 1", res.Funnel.FinalUsers)
	}
}

func TestPipelineMissingDeps(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Run(context.Background(), nil, nil); err == nil {
		t.Fatal("pipeline without deps accepted")
	}
}

func TestPipelineCancellation(t *testing.T) {
	gaz := koreaGaz(t)
	users, tweets := handBuilt(t, gaz)
	p := New(gaz, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, users, tweets); err == nil {
		t.Fatal("cancelled run should error")
	}
}

func TestPipelineOnSyntheticPopulation(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := synth.KoreanConfig(99, 3000, gaz)
	gen, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := twitter.NewService()
	pop, err := gen.Populate(svc)
	if err != nil {
		t.Fatal(err)
	}
	users, tweets := CollectFromService(svc)
	p := New(gaz, 10)
	res, err := p.Run(context.Background(), users, tweets)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Funnel
	if f.RawUsers != 3000 || f.RawTweets != pop.Tweets || f.GeoTweets != pop.GeoTweets {
		t.Fatalf("funnel inputs wrong: %+v (pop %d/%d)", f, pop.Tweets, pop.GeoTweets)
	}
	// The funnel must be strictly narrowing.
	if !(f.WellDefinedUsers <= f.RawUsers && f.FinalUsers <= f.WellDefinedUsers) {
		t.Fatalf("funnel not narrowing: %+v", f)
	}
	if f.FinalUsers == 0 {
		t.Fatal("no users survived; generator and pipeline disagree")
	}
	// Analysis totals match groupings.
	if res.Analysis.Users != len(res.Groupings) {
		t.Fatalf("analysis users %d != groupings %d", res.Analysis.Users, len(res.Groupings))
	}
	// The recovered group distribution should be dominated by Top-1 and
	// None, as the mobility mix dictates.
	top1 := res.Analysis.Stat(core.Top1).UserShare
	if top1 < 0.25 {
		t.Fatalf("Top-1 share = %.3f, implausibly low for the Korean mix", top1)
	}
	// Ground truth check: final users classified Top-1 are mostly residents.
	residents := 0
	for _, g := range res.Groupings {
		if g.Group != core.Top1 {
			continue
		}
		if pop.Truth[twitter.UserID(g.UserID)].Class == synth.Resident {
			residents++
		}
	}
	top1Count := res.Analysis.Stat(core.Top1).Users
	if top1Count > 0 && float64(residents)/float64(top1Count) < 0.6 {
		t.Fatalf("only %d/%d Top-1 users are residents", residents, top1Count)
	}
}

func TestCollectFromService(t *testing.T) {
	svc := twitter.NewService()
	u, _ := svc.CreateUser("a", "Seoul", "ko", t0)
	svc.PostTweet(u.ID, "x", t0, nil)
	svc.PostTweet(u.ID, "y", t0, nil)
	users, tweets := CollectFromService(svc)
	if len(users) != 1 || len(tweets[u.ID]) != 2 {
		t.Fatalf("collected %d users, %d tweets", len(users), len(tweets[u.ID]))
	}
}

// TestParallelMatchesSequential verifies worker count never changes output.
func TestParallelMatchesSequential(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := synth.KoreanConfig(55, 1500, gaz)
	gen, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := twitter.NewService()
	if _, err := gen.Populate(svc); err != nil {
		t.Fatal(err)
	}
	users, tweets := CollectFromService(svc)

	run := func(workers int) *Result {
		p := New(gaz, 10)
		p.Parallelism = workers
		res, err := p.Run(context.Background(), users, tweets)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, workers := range []int{2, 8} {
		par := run(workers)
		if len(par.Groupings) != len(seq.Groupings) {
			t.Fatalf("workers=%d: %d groupings vs %d", workers, len(par.Groupings), len(seq.Groupings))
		}
		for i := range seq.Groupings {
			a, b := seq.Groupings[i], par.Groupings[i]
			if a.UserID != b.UserID || a.Group != b.Group || a.TotalTweets != b.TotalTweets {
				t.Fatalf("workers=%d: grouping %d differs: %+v vs %+v", workers, i, a, b)
			}
		}
		if par.Funnel.FinalUsers != seq.Funnel.FinalUsers ||
			par.Funnel.WellDefinedUsers != seq.Funnel.WellDefinedUsers ||
			par.Funnel.EmptyProfiles != seq.Funnel.EmptyProfiles {
			t.Fatalf("workers=%d: funnel differs: %+v vs %+v", workers, par.Funnel, seq.Funnel)
		}
		for q, n := range seq.Funnel.ProfileBreakdown {
			if par.Funnel.ProfileBreakdown[q] != n {
				t.Fatalf("workers=%d: breakdown[%v] = %d vs %d", workers, q, par.Funnel.ProfileBreakdown[q], n)
			}
		}
		if par.Analysis.OverallMatchShare != seq.Analysis.OverallMatchShare {
			t.Fatalf("workers=%d: match share differs", workers)
		}
	}
}

func TestParallelCancellation(t *testing.T) {
	gaz := koreaGaz(t)
	users, tweets := handBuilt(t, gaz)
	p := New(gaz, 10)
	p.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, users, tweets); err == nil {
		t.Fatal("cancelled parallel run should error")
	}
}
