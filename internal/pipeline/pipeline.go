// Package pipeline wires the paper's §III data flow end to end: take a
// collected set of users and tweets (from the crawler's store or an
// in-process service), refine the free-text profile locations, keep users
// with GPS-tagged tweets, reverse-geocode profile and tweet locations into
// administrative districts, build the location strings, and run the
// text-based grouping analysis. Every attrition step is counted so the
// paper's collection funnel can be reported.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"stir/internal/admin"
	"stir/internal/core"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/textnorm"
	"stir/internal/twitter"
)

// Funnel counts the refinement attrition, mirroring the paper's §III-B
// narrative (52k crawled → ~3k well-defined → 1.4k with GPS tweets).
type Funnel struct {
	RawUsers  int
	RawTweets int
	// ProfileBreakdown counts users per profile-text quality.
	ProfileBreakdown map[textnorm.Quality]int
	// EmptyProfiles counts users with no location text at all.
	EmptyProfiles int
	// WellDefinedUsers have a uniquely resolvable profile district.
	WellDefinedUsers int
	// GeoTweets counts GPS-tagged tweets among all raw tweets.
	GeoTweets int
	// FinalUsers passed every filter: well-defined profile AND at least
	// MinGeoTweets GPS tweets.
	FinalUsers int
	// FinalGeoTweets are the geo tweets belonging to final users.
	FinalGeoTweets int
	// GeocodeFailures counts GPS points no district was found for.
	GeocodeFailures int
	// SkippedUsers counts users dropped by a ContinueOnError run after
	// their processing failed (always 0 in strict mode).
	SkippedUsers int
}

// Result is the pipeline's full output.
type Result struct {
	Funnel    Funnel
	Groupings []core.UserGrouping
	Analysis  core.Analysis
	// ProfileDistrict maps each final user to their profile district, the
	// input event detectors need.
	ProfileDistrict map[twitter.UserID]*admin.District
	// SkippedUsers lists the users a ContinueOnError run dropped, sorted by
	// ID. Empty in strict mode.
	SkippedUsers []twitter.UserID
}

// Pipeline holds the §III processing dependencies.
type Pipeline struct {
	// Refiner classifies profile text.
	Refiner *textnorm.Refiner
	// Resolver reverse-geocodes GPS points (HTTP client or direct).
	Resolver geocode.Resolver
	// Gazetteer resolves geocode responses back to districts.
	Gazetteer *admin.Gazetteer
	// MinGeoTweets is the minimum GPS tweets a user needs to survive
	// (default 1, the paper's criterion).
	MinGeoTweets int
	// StateLevel groups at state granularity instead of county — the
	// ablation for the paper's choice to split metropolitan cities into gu
	// ("these cities are too large and the populations are extremely high").
	StateLevel bool
	// Parallelism is the number of worker goroutines processing users
	// (default 1: sequential). The output is identical at any setting —
	// users are processed independently and results are re-sorted by ID.
	Parallelism int
	// ContinueOnError runs the pipeline in degraded mode: a user whose
	// processing fails (e.g. geocode errors that outlive the client's
	// retries) is skipped and recorded in Result.SkippedUsers and the
	// funnel instead of aborting the whole run. Context cancellation still
	// aborts.
	ContinueOnError bool
	// Obs receives the run's stage timings and funnel gauges (nil means
	// obs.Default; obs.Discard disables).
	Obs *obs.Registry
	// Trace, when set, opens a distributed root span for the run with stage
	// children and funnel annotations; the geocode client spans it induces
	// parent under the stages, so one run reassembles into one tree at
	// /debug/trace. Nil disables (zero overhead).
	Trace *trace.Tracer
}

// New builds a pipeline with an in-process resolver over gaz.
func New(gaz *admin.Gazetteer, slackKm float64) *Pipeline {
	resolver := geocode.NewDirectResolver(func(p geo.Point, slack float64) (geocode.Location, error) {
		d, err := gaz.ResolvePoint(p, slack)
		if err != nil {
			return geocode.Location{}, err
		}
		return geocode.Location{Country: d.Country, State: d.State, County: d.County}, nil
	}, slackKm, 65536)
	return &Pipeline{
		Refiner:   textnorm.NewRefiner(gaz),
		Resolver:  resolver,
		Gazetteer: gaz,
	}
}

// NewEmbedded builds a pipeline on the geofast embedded resolver: gaz is
// compiled into a cell→district grid once, and the per-point hot path skips
// the R-tree and the LRU entirely except on boundary cells. Grouping output
// is identical to New (same quantisation, same gazetteer semantics).
func NewEmbedded(gaz *admin.Gazetteer, slackKm float64) (*Pipeline, error) {
	resolver, err := geocode.CompileEmbedded(gaz, slackKm)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Refiner:   textnorm.NewRefiner(gaz),
		Resolver:  resolver,
		Gazetteer: gaz,
	}, nil
}

// Run processes a collected dataset. users maps ID to account; tweets maps
// ID to that user's tweets (any order).
func (p *Pipeline) Run(ctx context.Context, users map[twitter.UserID]*twitter.User, tweets map[twitter.UserID][]*twitter.Tweet) (*Result, error) {
	if p.Refiner == nil || p.Resolver == nil || p.Gazetteer == nil {
		return nil, errors.New("pipeline: Refiner, Resolver and Gazetteer are required")
	}
	minGeo := p.MinGeoTweets
	if minGeo <= 0 {
		minGeo = 1
	}
	reg := obs.Or(p.Obs)
	registerResolverMetrics(reg, p.Resolver)
	tracer := obs.NewTracer(reg)
	root := tracer.Start("pipeline")
	defer root.End()
	// The distributed span rides the context so every geocode/twitter client
	// call a stage makes joins the run's tree.
	ctx, dspan := p.Trace.Root(ctx, "pipeline.run")
	defer dspan.End()
	res := &Result{
		Funnel: Funnel{
			ProfileBreakdown: make(map[textnorm.Quality]int),
		},
		ProfileDistrict: make(map[twitter.UserID]*admin.District),
	}
	count := root.Child("count")
	_, dcount := trace.Start(ctx, "pipeline.count")
	res.Funnel.RawUsers = len(users)
	for _, ts := range tweets {
		res.Funnel.RawTweets += len(ts)
		for _, t := range ts {
			if t.HasGeo() {
				res.Funnel.GeoTweets++
			}
		}
	}
	count.End()
	dcount.End()

	// Deterministic order regardless of map iteration and worker count.
	ids := make([]twitter.UserID, 0, len(users))
	for id := range users {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	process := root.Child("users")
	uctx, dusers := trace.Start(ctx, "pipeline.users")
	defer dusers.End() // idempotent; covers the error returns mid-stage
	mSkipped := reg.Counter("pipeline_skipped_users_total")
	// skippable reports whether a per-user failure should degrade to a skip
	// rather than abort: only in ContinueOnError mode, and never when the
	// failure is really the run's context dying.
	skippable := func(err error) bool {
		return p.ContinueOnError && ctx.Err() == nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	skip := func(id twitter.UserID, mu *sync.Mutex) {
		if mu != nil {
			mu.Lock()
			defer mu.Unlock()
		}
		res.Funnel.SkippedUsers++
		res.SkippedUsers = append(res.SkippedUsers, id)
		mSkipped.Inc()
	}
	workers := p.Parallelism
	if workers <= 1 {
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := p.processUser(uctx, users[id], tweets[id], minGeo, res, nil); err != nil {
				if skippable(err) {
					skip(id, nil)
					continue
				}
				return nil, err
			}
		}
	} else {
		var (
			mu      sync.Mutex
			wg      sync.WaitGroup
			jobs    = make(chan twitter.UserID)
			stop    = make(chan struct{})
			errOnce sync.Once
			runErr  error
		)
		fail := func(err error) {
			errOnce.Do(func() {
				runErr = err
				close(stop)
			})
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for id := range jobs {
					if err := p.processUser(uctx, users[id], tweets[id], minGeo, res, &mu); err != nil {
						if skippable(err) {
							skip(id, &mu)
							continue
						}
						fail(err)
					}
				}
			}()
		}
		// Dispatch until done or the first failure: once a worker fails, the
		// stop channel unblocks the send so remaining IDs are never fed to a
		// run that is already doomed.
	dispatch:
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				fail(err)
				break
			}
			select {
			case jobs <- id:
			case <-stop:
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
		if runErr != nil {
			return nil, runErr
		}
		sort.Slice(res.Groupings, func(i, j int) bool {
			return res.Groupings[i].UserID < res.Groupings[j].UserID
		})
	}
	sort.Slice(res.SkippedUsers, func(i, j int) bool { return res.SkippedUsers[i] < res.SkippedUsers[j] })
	process.End()
	dusers.End()
	analyze := root.Child("analyze")
	_, danalyze := trace.Start(ctx, "pipeline.analyze")
	res.Analysis = core.Analyze(res.Groupings)
	analyze.End()
	danalyze.End()
	publishFunnel(reg, res.Funnel)
	if dspan != nil {
		f := res.Funnel
		dspan.AnnotateInt("funnel.raw_users", int64(f.RawUsers))
		dspan.AnnotateInt("funnel.well_defined", int64(f.WellDefinedUsers))
		dspan.AnnotateInt("funnel.final_users", int64(f.FinalUsers))
		dspan.AnnotateInt("funnel.geo_tweets", int64(f.GeoTweets))
		dspan.AnnotateInt("funnel.geocode_failures", int64(f.GeocodeFailures))
		dspan.AnnotateInt("funnel.skipped", int64(f.SkippedUsers))
	}
	return res, nil
}

// processUser runs one user through refine → geocode → group, appending to
// res under mu (nil mu means single-threaded).
func (p *Pipeline) processUser(ctx context.Context, u *twitter.User, userTweets []*twitter.Tweet, minGeo int, res *Result, mu *sync.Mutex) error {
	lock := func() {
		if mu != nil {
			mu.Lock()
		}
	}
	unlock := func() {
		if mu != nil {
			mu.Unlock()
		}
	}
	// Refinement touches only funnel counters; do the classification outside
	// the lock and the counting inside.
	var local Funnel
	local.ProfileBreakdown = make(map[textnorm.Quality]int)
	profile, ok, err := p.refineProfile(ctx, u, &local)
	lock()
	mergeFunnel(&res.Funnel, &local)
	unlock()
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	lock()
	res.Funnel.WellDefinedUsers++
	unlock()

	var geoFunnel Funnel
	places, geoCount, err := p.geocodeTweets(ctx, userTweets, &geoFunnel)
	lock()
	res.Funnel.GeocodeFailures += geoFunnel.GeocodeFailures
	unlock()
	if err != nil {
		return err
	}
	if geoCount < minGeo {
		return nil
	}
	profilePlace := core.Place{State: profile.State, County: profile.County}
	if p.StateLevel {
		profilePlace.County = profilePlace.State
		for i := range places {
			places[i].County = places[i].State
		}
	}
	g := core.BuildUserGrouping(int64(u.ID), profilePlace, places)
	lock()
	res.Funnel.FinalUsers++
	res.Funnel.FinalGeoTweets += geoCount
	res.ProfileDistrict[u.ID] = profile
	res.Groupings = append(res.Groupings, g)
	unlock()
	return nil
}

// mergeFunnel folds per-user refinement counters into the shared funnel.
func mergeFunnel(dst, src *Funnel) {
	dst.EmptyProfiles += src.EmptyProfiles
	dst.GeocodeFailures += src.GeocodeFailures
	for q, n := range src.ProfileBreakdown {
		dst.ProfileBreakdown[q] += n
	}
}

// refineProfile classifies one profile, resolving GPS-in-profile through the
// geocoder. Returns the district and whether the user survives. A resolver
// infrastructure error (anything but ErrNoMatch) is returned rather than
// counted as attrition, so degraded runs record the user as skipped instead
// of silently misfiling a fault as a bad profile.
func (p *Pipeline) refineProfile(ctx context.Context, u *twitter.User, f *Funnel) (*admin.District, bool, error) {
	if u.ProfileLocation == "" {
		f.EmptyProfiles++
		return nil, false, nil
	}
	cls := p.Refiner.Classify(u.ProfileLocation)
	f.ProfileBreakdown[cls.Quality]++
	switch cls.Quality {
	case textnorm.WellDefined:
		return cls.District, true, nil
	case textnorm.GPSCoordinates:
		loc, err := p.Resolver.Reverse(ctx, *cls.Point)
		if err != nil {
			if errors.Is(err, geocode.ErrNoMatch) {
				f.GeocodeFailures++
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("pipeline: geocode profile of %d: %w", u.ID, err)
		}
		d, err := p.districtOf(loc)
		if err != nil {
			f.GeocodeFailures++
			return nil, false, nil
		}
		return d, true, nil
	default:
		return nil, false, nil
	}
}

// geocodeTweets maps each GPS tweet to a Place.
func (p *Pipeline) geocodeTweets(ctx context.Context, ts []*twitter.Tweet, f *Funnel) ([]core.Place, int, error) {
	var places []core.Place
	count := 0
	for _, t := range ts {
		if !t.HasGeo() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		loc, err := p.Resolver.Reverse(ctx, geo.Point{Lat: t.Geo.Lat, Lon: t.Geo.Lon})
		if err != nil {
			if errors.Is(err, geocode.ErrNoMatch) {
				f.GeocodeFailures++
				continue
			}
			return nil, 0, fmt.Errorf("pipeline: geocode tweet %d: %w", t.ID, err)
		}
		places = append(places, core.Place{State: loc.State, County: loc.County})
		count++
	}
	return places, count, nil
}

// districtOf maps a geocode response to the gazetteer district.
func (p *Pipeline) districtOf(loc geocode.Location) (*admin.District, error) {
	ds := p.Gazetteer.ResolveNameInState(loc.County, loc.State)
	if len(ds) == 1 {
		return ds[0], nil
	}
	return nil, fmt.Errorf("pipeline: no unique district for %s/%s", loc.State, loc.County)
}

// CollectFromService snapshots a whole simulated platform into the maps Run
// consumes — the shortcut for offline experiments that skip the crawler.
func CollectFromService(svc *twitter.Service) (map[twitter.UserID]*twitter.User, map[twitter.UserID][]*twitter.Tweet) {
	users := make(map[twitter.UserID]*twitter.User)
	tweets := make(map[twitter.UserID][]*twitter.Tweet)
	svc.EachUser(func(u *twitter.User) bool {
		users[u.ID] = u
		return true
	})
	svc.EachTweet(func(t *twitter.Tweet) bool {
		tweets[t.UserID] = append(tweets[t.UserID], t)
		return true
	})
	return users, tweets
}
