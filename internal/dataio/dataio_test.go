package dataio

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stir/internal/core"
	"stir/internal/twitter"
)

var t0 = time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)

func sampleCollection() (map[twitter.UserID]*twitter.User, map[twitter.UserID][]*twitter.Tweet) {
	users := map[twitter.UserID]*twitter.User{
		2: {ID: 2, ScreenName: "b", ProfileLocation: "양천구", Lang: "ko", CreatedAt: t0},
		1: {ID: 1, ScreenName: "a", ProfileLocation: "Seoul Jung-gu", Lang: "ko", CreatedAt: t0},
	}
	tweets := map[twitter.UserID][]*twitter.Tweet{
		1: {
			{ID: 10, UserID: 1, Text: "hello #tag", CreatedAt: t0},
			{ID: 12, UserID: 1, Text: "geo", CreatedAt: t0, Geo: &twitter.GeoTag{Lat: 37.5, Lon: 127}},
		},
		2: {
			{ID: 11, UserID: 2, Text: "안녕", CreatedAt: t0},
		},
	}
	return users, tweets
}

func TestCollectionRoundTrip(t *testing.T) {
	users, tweets := sampleCollection()
	var buf bytes.Buffer
	if err := WriteCollection(&buf, users, tweets); err != nil {
		t.Fatal(err)
	}
	// Deterministic: users by ID, then tweets by ID.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], `"screen_name":"a"`) || !strings.Contains(lines[1], `"screen_name":"b"`) {
		t.Fatalf("user order wrong:\n%s", buf.String())
	}

	gotUsers, gotTweets, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotUsers) != 2 {
		t.Fatalf("users = %d", len(gotUsers))
	}
	if gotUsers[2].ProfileLocation != "양천구" {
		t.Fatalf("unicode lost: %q", gotUsers[2].ProfileLocation)
	}
	if len(gotTweets[1]) != 2 || len(gotTweets[2]) != 1 {
		t.Fatalf("tweets = %v", gotTweets)
	}
	if gotTweets[1][1].Geo == nil || gotTweets[1][1].Geo.Lat != 37.5 {
		t.Fatal("geo tag lost")
	}
}

func TestReadCollectionErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"kind":"alien"}`,
		`{"kind":"user"}`,  // missing user payload
		`{"kind":"tweet"}`, // missing tweet payload
	}
	for _, in := range cases {
		if _, _, err := ReadCollection(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	// Blank lines are tolerated.
	u, tw, err := ReadCollection(strings.NewReader("\n\n"))
	if err != nil || len(u) != 0 || len(tw) != 0 {
		t.Fatalf("blank file: %v %v %v", u, tw, err)
	}
}

func TestLocationStringsRoundTrip(t *testing.T) {
	yang := core.Place{State: "Seoul", County: "Yangcheon-gu"}
	jung := core.Place{State: "Seoul", County: "Jung-gu"}
	groupings := []core.UserGrouping{
		core.BuildUserGrouping(1001, yang, []core.Place{yang, yang, jung}),
		core.BuildUserGrouping(71, core.Place{State: "Gyeonggi-do", County: "Uiwang-si"},
			[]core.Place{jung}),
	}
	var buf bytes.Buffer
	if err := WriteLocationStrings(&buf, groupings); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1001#Seoul#Yangcheon-gu#Seoul#Yangcheon-gu (2)") {
		t.Fatalf("output missing merged string:\n%s", buf.String())
	}
	back, err := ReadLocationStrings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("groupings = %d", len(back))
	}
	for i := range back {
		if back[i].Group != groupings[i].Group ||
			back[i].TotalTweets != groupings[i].TotalTweets ||
			back[i].MatchedRank != groupings[i].MatchedRank {
			t.Fatalf("grouping %d mismatch: %+v vs %+v", i, back[i], groupings[i])
		}
	}
}

func TestReadLocationStringsWithoutCount(t *testing.T) {
	in := "5#Seoul#Jung-gu#Seoul#Jung-gu\n5#Seoul#Jung-gu#Seoul#Mapo-gu\n"
	gs, err := ReadLocationStrings(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].TotalTweets != 2 || gs[0].Group != core.Top1 {
		t.Fatalf("groupings = %+v", gs)
	}
}

func TestReadLocationStringsErrors(t *testing.T) {
	for _, in := range []string{
		"1#Seoul#Jung-gu#Seoul#Jung-gu (x)",
		"1#Seoul#Jung-gu#Seoul#Jung-gu (0)",
		"garbage line",
	} {
		if _, err := ReadLocationStrings(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestWriteGroupCSV(t *testing.T) {
	yang := core.Place{State: "Seoul", County: "Yangcheon-gu"}
	jung := core.Place{State: "Seoul", County: "Jung-gu"}
	a := core.Analyze([]core.UserGrouping{
		core.BuildUserGrouping(1, yang, []core.Place{yang, yang, jung}),
		core.BuildUserGrouping(2, yang, []core.Place{jung}),
	})
	var buf bytes.Buffer
	if err := WriteGroupCSV(&buf, &a); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+core.NumGroups {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "Top-1,1,0.5") {
		t.Fatalf("Top-1 row = %q", lines[1])
	}
}
