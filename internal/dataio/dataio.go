// Package dataio serialises STIR datasets and analysis results to
// line-oriented interchange formats: JSONL for raw collections (one user or
// tweet per line), the paper's own '#'-delimited location-string format for
// refined data (Table I), and CSV for per-group statistics. Everything
// written can be read back, so analyses are repeatable from an exported file
// without the original store.
package dataio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"stir/internal/core"
	"stir/internal/twitter"
)

// lineKind tags each JSONL line so users and tweets can share one file.
type lineKind struct {
	Kind string `json:"kind"`
}

type userLine struct {
	Kind string        `json:"kind"`
	User *twitter.User `json:"user"`
}

type tweetLine struct {
	Kind  string         `json:"kind"`
	Tweet *twitter.Tweet `json:"tweet"`
}

// WriteCollection streams a raw collection (users + tweets) as JSONL. Users
// are written first, in ascending ID order, then tweets in ID order, so the
// output is deterministic.
func WriteCollection(w io.Writer, users map[twitter.UserID]*twitter.User, tweets map[twitter.UserID][]*twitter.Tweet) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, u := range sortedUsers(users) {
		if err := enc.Encode(userLine{Kind: "user", User: u}); err != nil {
			return fmt.Errorf("dataio: write user: %w", err)
		}
	}
	for _, t := range sortedTweets(tweets) {
		if err := enc.Encode(tweetLine{Kind: "tweet", Tweet: t}); err != nil {
			return fmt.Errorf("dataio: write tweet: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCollection parses a JSONL collection back into the maps the pipeline
// consumes. Unknown line kinds are an error (truncated or foreign files
// should not half-load silently).
func ReadCollection(r io.Reader) (map[twitter.UserID]*twitter.User, map[twitter.UserID][]*twitter.Tweet, error) {
	users := make(map[twitter.UserID]*twitter.User)
	tweets := make(map[twitter.UserID][]*twitter.Tweet)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var kind lineKind
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, nil, fmt.Errorf("dataio: line %d: %w", lineNo, err)
		}
		switch kind.Kind {
		case "user":
			var ul userLine
			if err := json.Unmarshal(raw, &ul); err != nil || ul.User == nil {
				return nil, nil, fmt.Errorf("dataio: line %d: bad user line", lineNo)
			}
			users[ul.User.ID] = ul.User
		case "tweet":
			var tl tweetLine
			if err := json.Unmarshal(raw, &tl); err != nil || tl.Tweet == nil {
				return nil, nil, fmt.Errorf("dataio: line %d: bad tweet line", lineNo)
			}
			tweets[tl.Tweet.UserID] = append(tweets[tl.Tweet.UserID], tl.Tweet)
		default:
			return nil, nil, fmt.Errorf("dataio: line %d: unknown kind %q", lineNo, kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dataio: read: %w", err)
	}
	return users, tweets, nil
}

// WriteLocationStrings emits the refined dataset in the paper's own format:
// one "userid#state#county#state#county (n)" line per merged string
// (Table II), ordered by user then rank.
func WriteLocationStrings(w io.Writer, groupings []core.UserGrouping) error {
	bw := bufio.NewWriter(w)
	for _, g := range groupings {
		for _, m := range g.Merged {
			if _, err := fmt.Fprintln(bw, m.String()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadLocationStrings parses Table-II-format lines (with or without the
// "(n)" multiplicity suffix; absent means 1) and rebuilds the groupings.
func ReadLocationStrings(r io.Reader) ([]core.UserGrouping, error) {
	var raw []string
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		base, count, err := splitCount(line)
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: %w", lineNo, err)
		}
		for i := 0; i < count; i++ {
			raw = append(raw, base)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return core.BuildFromStrings(raw)
}

// splitCount separates "string (n)" into the string and its multiplicity.
func splitCount(line string) (string, int, error) {
	open := strings.LastIndex(line, " (")
	if open < 0 || !strings.HasSuffix(line, ")") {
		return line, 1, nil
	}
	numStr := line[open+2 : len(line)-1]
	var n int
	if _, err := fmt.Sscanf(numStr, "%d", &n); err != nil || n <= 0 {
		return "", 0, fmt.Errorf("bad multiplicity %q", numStr)
	}
	return line[:open], n, nil
}

// WriteGroupCSV emits the per-group analysis as CSV, the figure data series.
func WriteGroupCSV(w io.Writer, a *core.Analysis) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "group,users,user_share,tweets,tweet_share,avg_districts,avg_match_share"); err != nil {
		return err
	}
	for _, g := range core.Groups() {
		st := a.Stat(g)
		if _, err := fmt.Fprintf(bw, "%s,%d,%.6f,%d,%.6f,%.6f,%.6f\n",
			g, st.Users, st.UserShare, st.Tweets, st.TweetShare,
			st.AvgDistinctDistricts, st.AvgMatchShare); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sortedUsers(users map[twitter.UserID]*twitter.User) []*twitter.User {
	ids := make([]twitter.UserID, 0, len(users))
	for id := range users {
		ids = append(ids, id)
	}
	sortIDs(ids)
	out := make([]*twitter.User, 0, len(ids))
	for _, id := range ids {
		out = append(out, users[id])
	}
	return out
}

func sortedTweets(tweets map[twitter.UserID][]*twitter.Tweet) []*twitter.Tweet {
	var all []*twitter.Tweet
	for _, ts := range tweets {
		all = append(all, ts...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

func sortIDs(ids []twitter.UserID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
