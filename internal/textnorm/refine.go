// Package textnorm refines the free-text profile locations on Twitter into
// administrative districts — the manual filtering step of the paper's §III-B.
// Profiles carry anything from exact addresses and GPS coordinates to vague
// ("my home"), insufficient ("Earth", "Seoul", "Korea") and meaningless
// ("darangland :)") strings, sometimes two locations at once; the classifier
// sorts them into those buckets and extracts the district when one exists.
package textnorm

import (
	"strconv"
	"strings"

	"stir/internal/admin"
	"stir/internal/geo"
)

// Quality buckets a profile location string, mirroring the paper's manual
// refinement categories.
type Quality int

const (
	// WellDefined uniquely names one administrative district.
	WellDefined Quality = iota
	// GPSCoordinates means the profile holds literal coordinates (some users
	// paste them); the point still needs reverse geocoding.
	GPSCoordinates
	// Ambiguous names more than one possible district, like the paper's user
	// with both "Gold Coast Australia" and a Seoul district in one field.
	Ambiguous
	// Vague is a relative or personal place: "my home", "everywhere".
	Vague
	// Insufficient is recognisable but too coarse for county-level grouping:
	// "Earth", "Korea", or a bare state like "Seoul".
	Insufficient
	// Meaningless matches nothing at all: "darangland :)".
	Meaningless
)

// String implements fmt.Stringer.
func (q Quality) String() string {
	switch q {
	case WellDefined:
		return "well-defined"
	case GPSCoordinates:
		return "gps-coordinates"
	case Ambiguous:
		return "ambiguous"
	case Vague:
		return "vague"
	case Insufficient:
		return "insufficient"
	case Meaningless:
		return "meaningless"
	default:
		return "unknown"
	}
}

// Usable reports whether the paper's refinement keeps users with this
// quality: only uniquely resolvable locations survive.
func (q Quality) Usable() bool { return q == WellDefined || q == GPSCoordinates }

// Result is one classified profile location.
type Result struct {
	Quality Quality
	// District is set for WellDefined (and for GPSCoordinates after the
	// caller reverse-geocodes Point).
	District *admin.District
	// Candidates holds the competing districts for Ambiguous.
	Candidates []*admin.District
	// Point is set for GPSCoordinates.
	Point *geo.Point
	// MatchedText is the fragment that produced the district, for audits.
	MatchedText string
}

// Refiner classifies profile locations against a gazetteer.
type Refiner struct {
	gaz *admin.Gazetteer
	// MaxNGram bounds how many consecutive tokens one district name may
	// span; 4 covers "gold coast australia" style names.
	MaxNGram int
}

// NewRefiner builds a Refiner over the gazetteer.
func NewRefiner(gaz *admin.Gazetteer) *Refiner {
	return &Refiner{gaz: gaz, MaxNGram: 4}
}

// vagueTerms are relative/personal places with no fixed district.
var vagueTerms = map[string]bool{
	"my home": true, "home": true, "my house": true, "house": true,
	"my room": true, "somewhere": true, "everywhere": true, "nowhere": true,
	"here": true, "there": true, "in your heart": true, "heart": true,
	"internet": true, "online": true, "twitter": true, "web": true,
	"우리집": true, "집": true, "어딘가": true,
}

// planetTerms are recognisable but uselessly coarse, the paper's "Earth"
// case; country names land here too.
var planetTerms = map[string]bool{
	"earth": true, "world": true, "the world": true, "planet earth": true,
	"moon": true, "mars": true, "universe": true, "asia": true,
	"korea": true, "south korea": true, "republic of korea": true,
	"대한민국": true, "한국": true, "usa": true, "united states": true,
	"japan": true, "china": true, "uk": true, "united kingdom": true,
	"australia": true, "canada": true, "france": true, "germany": true,
}

// Classify buckets one profile location string.
func (r *Refiner) Classify(raw string) Result {
	trimmed := strings.TrimSpace(raw)
	if trimmed == "" {
		return Result{Quality: Meaningless}
	}
	if p, ok := parseCoordinates(trimmed); ok {
		return Result{Quality: GPSCoordinates, Point: &p, MatchedText: trimmed}
	}
	norm := admin.NormalizeName(trimmed)
	if norm == "" {
		return Result{Quality: Meaningless}
	}
	if vagueTerms[norm] {
		return Result{Quality: Vague, MatchedText: norm}
	}
	if planetTerms[norm] {
		return Result{Quality: Insufficient, MatchedText: norm}
	}

	// Whole-string match first: cheapest and least ambiguous.
	if res, ok := r.tryResolve(norm); ok {
		return res
	}
	// Bare state ("Seoul", "경기도"): recognisable but too coarse.
	if state, ok := r.gaz.IsState(norm); ok {
		return Result{Quality: Insufficient, MatchedText: state}
	}

	// Token scan: find district names and state names anywhere in the text.
	return r.scanTokens(norm)
}

// tryResolve resolves a candidate name; unique hits are WellDefined, multi
// hits collapse to one district when a single state matches.
func (r *Refiner) tryResolve(name string) (Result, bool) {
	ds := r.gaz.ResolveName(name)
	switch {
	case len(ds) == 1:
		return Result{Quality: WellDefined, District: ds[0], MatchedText: name}, true
	case len(ds) > 1:
		return Result{Quality: Ambiguous, Candidates: ds, MatchedText: name}, true
	default:
		return Result{}, false
	}
}

// scanTokens walks n-grams of the normalised text, collecting every district
// and state mention, then reconciles them.
func (r *Refiner) scanTokens(norm string) Result {
	tokens := strings.Fields(norm)
	maxN := r.MaxNGram
	if maxN < 1 {
		maxN = 1
	}
	var (
		districts []*admin.District
		states    []string
		matched   []string
	)
	used := make([]bool, len(tokens))
	// Longest spans first so "gold coast australia" wins over "gold".
	for n := maxN; n >= 1; n-- {
		for i := 0; i+n <= len(tokens); i++ {
			if anyUsed(used, i, n) {
				continue
			}
			frag := strings.Join(tokens[i:i+n], " ")
			if ds := r.gaz.ResolveName(frag); len(ds) > 0 {
				districts = append(districts, ds...)
				matched = append(matched, frag)
				markUsed(used, i, n)
				continue
			}
			if st, ok := r.gaz.IsState(frag); ok {
				states = append(states, st)
				matched = append(matched, frag)
				markUsed(used, i, n)
			}
		}
	}
	districts = dedupeDistricts(districts)
	// A state mention disambiguates same-named counties ("Jung-gu" + "Busan").
	if len(states) > 0 && len(districts) > 1 {
		var narrowed []*admin.District
		for _, d := range districts {
			for _, st := range states {
				if d.State == st {
					narrowed = append(narrowed, d)
					break
				}
			}
		}
		if len(narrowed) > 0 {
			districts = narrowed
		}
	}
	switch {
	case len(districts) == 1:
		return Result{Quality: WellDefined, District: districts[0], MatchedText: strings.Join(matched, " + ")}
	case len(districts) > 1:
		// Same county name across states, or genuinely two places listed.
		return Result{Quality: Ambiguous, Candidates: districts, MatchedText: strings.Join(matched, " + ")}
	case len(states) > 0:
		return Result{Quality: Insufficient, MatchedText: strings.Join(matched, " + ")}
	default:
		return Result{Quality: Meaningless}
	}
}

func anyUsed(used []bool, i, n int) bool {
	for j := i; j < i+n; j++ {
		if used[j] {
			return true
		}
	}
	return false
}

func markUsed(used []bool, i, n int) {
	for j := i; j < i+n; j++ {
		used[j] = true
	}
}

func dedupeDistricts(ds []*admin.District) []*admin.District {
	seen := make(map[string]bool, len(ds))
	out := ds[:0]
	for _, d := range ds {
		if !seen[d.ID()] {
			seen[d.ID()] = true
			out = append(out, d)
		}
	}
	return out
}

// parseCoordinates recognises "37.53, 126.97"-style literal coordinates:
// exactly two decimal numbers in valid ranges, separated by a comma and/or
// whitespace, with at least one fractional part (so "3 14" is not a match).
func parseCoordinates(s string) (geo.Point, bool) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == ';' || r == '/'
	})
	if len(fields) != 2 {
		return geo.Point{}, false
	}
	lat, err1 := strconv.ParseFloat(fields[0], 64)
	lon, err2 := strconv.ParseFloat(fields[1], 64)
	if err1 != nil || err2 != nil {
		return geo.Point{}, false
	}
	if !strings.Contains(fields[0], ".") && !strings.Contains(fields[1], ".") {
		return geo.Point{}, false
	}
	p, err := geo.NewPoint(lat, lon)
	if err != nil {
		return geo.Point{}, false
	}
	return p, true
}
