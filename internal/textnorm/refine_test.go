package textnorm

import (
	"testing"
	"testing/quick"

	"stir/internal/admin"
)

func newRefiner(t *testing.T) *Refiner {
	t.Helper()
	gaz, err := admin.NewWorldGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	return NewRefiner(gaz)
}

func TestClassifyWellDefined(t *testing.T) {
	r := newRefiner(t)
	cases := []struct {
		in     string
		county string
	}{
		{"Yangcheon-gu", "Yangcheon-gu"},
		{"Seoul Yangcheon-gu", "Yangcheon-gu"},
		{"Yangcheon-gu, Seoul, Korea", "Yangcheon-gu"},
		{"양천구", "Yangcheon-gu"},
		{"Uiwang-si", "Uiwang-si"},
		{"uiwang", "Uiwang-si"},
		{"Bucheon-si, Gyeonggi-do", "Bucheon-si"},
		{"I live in Haeundae now", "Haeundae-gu"},
		{"Gold Coast Australia", "Gold Coast"},
		{"NYC", "New York City"},
		{"Jung-gu, Busan", "Jung-gu"}, // state disambiguates
	}
	for _, tc := range cases {
		got := r.Classify(tc.in)
		if got.Quality != WellDefined {
			t.Errorf("Classify(%q).Quality = %v, want well-defined (matched %q)", tc.in, got.Quality, got.MatchedText)
			continue
		}
		if got.District.County != tc.county {
			t.Errorf("Classify(%q) district = %s, want %s", tc.in, got.District.County, tc.county)
		}
	}
}

func TestClassifyInsufficient(t *testing.T) {
	r := newRefiner(t)
	for _, in := range []string{"Seoul", "서울", "Korea", "대한민국", "Earth", "Gyeonggi-do", "경기도", "planet earth", "Asia"} {
		got := r.Classify(in)
		if got.Quality != Insufficient {
			t.Errorf("Classify(%q) = %v, want insufficient", in, got.Quality)
		}
	}
}

func TestClassifyVague(t *testing.T) {
	r := newRefiner(t)
	for _, in := range []string{"my home", "HOME", "somewhere", "in your heart", "우리집", "internet"} {
		got := r.Classify(in)
		if got.Quality != Vague {
			t.Errorf("Classify(%q) = %v, want vague", in, got.Quality)
		}
	}
}

func TestClassifyMeaningless(t *testing.T) {
	r := newRefiner(t)
	for _, in := range []string{"darangland :)", "", "   ", "xyzzyplugh", "!!!", "아무데나아님"} {
		got := r.Classify(in)
		if got.Quality != Meaningless {
			t.Errorf("Classify(%q) = %v, want meaningless", in, got.Quality)
		}
	}
}

func TestClassifyAmbiguous(t *testing.T) {
	r := newRefiner(t)
	// Jung-gu alone exists in many metros.
	got := r.Classify("Jung-gu")
	if got.Quality != Ambiguous || len(got.Candidates) < 5 {
		t.Fatalf("Classify(Jung-gu) = %v with %d candidates", got.Quality, len(got.Candidates))
	}
	// The paper's example: two locations in one field.
	got = r.Classify("Gold Coast Australia / Yangcheon-gu")
	if got.Quality != Ambiguous || len(got.Candidates) != 2 {
		t.Fatalf("two-location profile = %v, candidates %v", got.Quality, got.Candidates)
	}
}

func TestClassifyGPSCoordinates(t *testing.T) {
	r := newRefiner(t)
	cases := []string{"37.5172, 126.8664", "37.5172 126.8664", "37.5,126.9"}
	for _, in := range cases {
		got := r.Classify(in)
		if got.Quality != GPSCoordinates || got.Point == nil {
			t.Errorf("Classify(%q) = %v, want gps", in, got.Quality)
			continue
		}
		if got.Point.Lat < 37 || got.Point.Lat > 38 {
			t.Errorf("Classify(%q) point = %v", in, got.Point)
		}
	}
	// Out-of-range or non-coordinate numerics are not GPS.
	for _, in := range []string{"99.0, 200.0", "3 14", "1234"} {
		if got := r.Classify(in); got.Quality == GPSCoordinates {
			t.Errorf("Classify(%q) wrongly detected coordinates", in)
		}
	}
}

func TestQualityStringsAndUsable(t *testing.T) {
	all := []Quality{WellDefined, GPSCoordinates, Ambiguous, Vague, Insufficient, Meaningless}
	want := []string{"well-defined", "gps-coordinates", "ambiguous", "vague", "insufficient", "meaningless"}
	for i, q := range all {
		if q.String() != want[i] {
			t.Errorf("Quality(%d).String() = %q, want %q", i, q.String(), want[i])
		}
	}
	if Quality(99).String() != "unknown" {
		t.Error("out-of-range quality should stringify as unknown")
	}
	if !WellDefined.Usable() || !GPSCoordinates.Usable() {
		t.Error("well-defined and gps should be usable")
	}
	for _, q := range []Quality{Ambiguous, Vague, Insufficient, Meaningless} {
		if q.Usable() {
			t.Errorf("%v should not be usable", q)
		}
	}
}

func TestClassifyNoisyRealWorldProfiles(t *testing.T) {
	r := newRefiner(t)
	// Shapes seen in the paper's Fig. 3 screenshots.
	cases := []struct {
		in   string
		want Quality
	}{
		{"Seoul, Yangcheon-gu", WellDefined},
		{"Bucheon-si Gyeonggi-do Korea", WellDefined},
		{"seoul korea", Insufficient},
		{"Republic of Korea", Insufficient},
		{"living in GANGNAM-GU, seoul", WellDefined},
		{"Tokyo Japan", WellDefined},
	}
	for _, tc := range cases {
		got := r.Classify(tc.in)
		if got.Quality != tc.want {
			t.Errorf("Classify(%q) = %v (matched %q), want %v", tc.in, got.Quality, got.MatchedText, tc.want)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	gaz, err := admin.NewWorldGazetteer()
	if err != nil {
		b.Fatal(err)
	}
	r := NewRefiner(gaz)
	inputs := []string{
		"Yangcheon-gu, Seoul, Korea",
		"my home",
		"37.5172, 126.8664",
		"darangland :)",
		"Gold Coast Australia",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Classify(inputs[i%len(inputs)])
	}
}

// Property: Classify never panics and always lands in a defined bucket with
// consistent payload fields, no matter the input bytes.
func TestClassifyTotalProperty(t *testing.T) {
	r := newRefiner(t)
	f := func(raw string) bool {
		res := r.Classify(raw)
		switch res.Quality {
		case WellDefined:
			return res.District != nil
		case GPSCoordinates:
			return res.Point != nil
		case Ambiguous:
			return len(res.Candidates) > 1
		case Vague, Insufficient, Meaningless:
			return true
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
