package homeloc

import (
	"context"
	"errors"
	"testing"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/synth"
	"stir/internal/twitter"
)

var t0 = time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)

func newPredictor(t testing.TB) (*Predictor, *admin.Gazetteer) {
	t.Helper()
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	resolver := geocode.NewDirectResolver(func(p geo.Point, slack float64) (geocode.Location, error) {
		d, err := gaz.ResolvePoint(p, slack)
		if err != nil {
			return geocode.Location{}, err
		}
		return geocode.Location{Country: d.Country, State: d.State, County: d.County}, nil
	}, 10, 4096)
	return &Predictor{Gaz: gaz, Resolver: resolver}, gaz
}

func geoAt(t *testing.T, gaz *admin.Gazetteer, id string) *twitter.GeoTag {
	t.Helper()
	d, err := gaz.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return &twitter.GeoTag{Lat: d.Center.Lat, Lon: d.Center.Lon}
}

func TestPredictFromGPS(t *testing.T) {
	p, gaz := newPredictor(t)
	tweets := []*twitter.Tweet{
		{ID: 1, Text: "coffee", Geo: geoAt(t, gaz, "KR/Seoul/Yangcheon-gu"), CreatedAt: t0},
		{ID: 2, Text: "rain", Geo: geoAt(t, gaz, "KR/Seoul/Yangcheon-gu"), CreatedAt: t0},
		{ID: 3, Text: "bus", Geo: geoAt(t, gaz, "KR/Seoul/Jung-gu"), CreatedAt: t0},
	}
	pred, err := p.Predict(context.Background(), tweets)
	if err != nil {
		t.Fatal(err)
	}
	if pred.District.County != "Yangcheon-gu" {
		t.Fatalf("predicted %s", pred.District.ID())
	}
	if pred.GPSVotes != 3 || pred.ContentVotes != 0 {
		t.Fatalf("votes = %+v", pred)
	}
	if pred.Confidence() <= 0.5 {
		t.Fatalf("confidence = %v", pred.Confidence())
	}
}

func TestPredictFromMentions(t *testing.T) {
	p, _ := newPredictor(t)
	tweets := []*twitter.Tweet{
		{ID: 1, Text: "great lunch at Haeundae today", CreatedAt: t0},
		{ID: 2, Text: "back in haeundae-gu for the beach", CreatedAt: t0},
		{ID: 3, Text: "visiting Jongno-gu tomorrow", CreatedAt: t0},
	}
	pred, err := p.Predict(context.Background(), tweets)
	if err != nil {
		t.Fatal(err)
	}
	if pred.District.County != "Haeundae-gu" {
		t.Fatalf("predicted %s", pred.District.ID())
	}
	if pred.ContentVotes != 3 {
		t.Fatalf("content votes = %d", pred.ContentVotes)
	}
}

func TestPredictGPSOutweighsMentions(t *testing.T) {
	p, gaz := newPredictor(t)
	// Two name-drops of Jongno vs one GPS tweet in Yangcheon: GPS weight 3
	// beats content weight 2×1.
	tweets := []*twitter.Tweet{
		{ID: 1, Text: "thinking about Jongno-gu", CreatedAt: t0},
		{ID: 2, Text: "missing Jongno-gu", CreatedAt: t0},
		{ID: 3, Text: "home", Geo: geoAt(t, gaz, "KR/Seoul/Yangcheon-gu"), CreatedAt: t0},
	}
	pred, err := p.Predict(context.Background(), tweets)
	if err != nil {
		t.Fatal(err)
	}
	if pred.District.County != "Yangcheon-gu" {
		t.Fatalf("predicted %s, want GPS channel to win", pred.District.ID())
	}
}

func TestPredictAmbiguousMentionSplitsVote(t *testing.T) {
	p, _ := newPredictor(t)
	// "Jung-gu" is ambiguous across metros; a single unambiguous mention of
	// a different district must win over one ambiguous mention.
	tweets := []*twitter.Tweet{
		{ID: 1, Text: "meeting in Jung-gu", CreatedAt: t0},
		{ID: 2, Text: "home sweet Yangcheon-gu", CreatedAt: t0},
	}
	pred, err := p.Predict(context.Background(), tweets)
	if err != nil {
		t.Fatal(err)
	}
	if pred.District.County != "Yangcheon-gu" {
		t.Fatalf("predicted %s", pred.District.ID())
	}
}

func TestPredictNoEvidence(t *testing.T) {
	p, _ := newPredictor(t)
	tweets := []*twitter.Tweet{{ID: 1, Text: "nothing location-ish here", CreatedAt: t0}}
	if _, err := p.Predict(context.Background(), tweets); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
	if _, err := (&Predictor{}).Predict(context.Background(), nil); err == nil {
		t.Fatal("missing gazetteer accepted")
	}
}

// TestPredictAgainstGroundTruth checks the predictor recovers the synthetic
// generator's true home for most users with enough GPS evidence.
func TestPredictAgainstGroundTruth(t *testing.T) {
	p, gaz := newPredictor(t)
	cfg := synth.KoreanConfig(77, 1200, gaz)
	gen, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := twitter.NewService()
	pop, err := gen.Populate(svc)
	if err != nil {
		t.Fatal(err)
	}
	byUser := map[twitter.UserID][]*twitter.Tweet{}
	svc.EachTweet(func(tw *twitter.Tweet) bool {
		byUser[tw.UserID] = append(byUser[tw.UserID], tw)
		return true
	})
	correct, evaluated := 0, 0
	for id, tweets := range byUser {
		geoCount := 0
		for _, tw := range tweets {
			if tw.Geo != nil {
				geoCount++
			}
		}
		if geoCount < 5 {
			continue // too little evidence to grade the predictor on
		}
		truth := pop.Truth[id]
		// Only residents actually live where the generator says "home";
		// other classes are mobile by construction.
		if truth.Class != synth.Resident {
			continue
		}
		pred, err := p.Predict(context.Background(), tweets)
		if err != nil {
			continue
		}
		evaluated++
		if pred.District.ID() == truth.Home.ID() {
			correct++
		}
	}
	if evaluated < 10 {
		t.Fatalf("only %d users evaluated; generator settings drifted", evaluated)
	}
	acc := float64(correct) / float64(evaluated)
	if acc < 0.7 {
		t.Fatalf("home prediction accuracy %.2f over %d residents, want ≥ 0.7", acc, evaluated)
	}
}
