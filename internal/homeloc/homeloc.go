// Package homeloc predicts a user's home district from the evidence in
// their tweets, without looking at the profile location. It is the library's
// extension of the paper's future-work direction: once profile locations are
// known to be unreliable, a detector wants an independent estimate — the
// research line of Cheng et al.'s content-based user geolocation.
//
// Two evidence channels vote:
//
//   - GPS channel: districts the user's geo-tagged tweets were posted from
//     (strong but sparse, the paper's ~0.25% problem);
//   - content channel: district names mentioned in tweet text ("lunch at
//     Haeundae-gu"), scanned with the gazetteer; ambiguous names split their
//     vote across candidates.
package homeloc

import (
	"context"
	"errors"
	"sort"
	"strings"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/twitter"
)

// Predictor votes over a gazetteer.
type Predictor struct {
	Gaz *admin.Gazetteer
	// Resolver reverse-geocodes GPS tweets; required for the GPS channel.
	Resolver geocode.Resolver
	// GPSWeight is the vote weight of one geo-tagged tweet (default 3: a
	// coordinate is much stronger evidence than a name-drop).
	GPSWeight float64
	// ContentWeight is the vote weight of one textual mention (default 1).
	ContentWeight float64
	// MaxNGram bounds district-name length in tokens (default 3).
	MaxNGram int
}

// Prediction is the voting outcome for one user.
type Prediction struct {
	// District is the winner, nil when no evidence existed.
	District *admin.District
	// Score is the winner's vote mass; Total is all vote mass.
	Score, Total float64
	// GPSVotes and ContentVotes count evidence items per channel.
	GPSVotes, ContentVotes int
}

// Confidence is the winner's share of all votes (0 when no evidence).
func (p Prediction) Confidence() float64 {
	if p.Total == 0 {
		return 0
	}
	return p.Score / p.Total
}

// ErrNoEvidence reports a user with neither GPS tweets nor mentions.
var ErrNoEvidence = errors.New("homeloc: no location evidence in tweets")

// Predict runs both evidence channels over the user's tweets.
func (p *Predictor) Predict(ctx context.Context, tweets []*twitter.Tweet) (Prediction, error) {
	if p.Gaz == nil {
		return Prediction{}, errors.New("homeloc: Gaz is required")
	}
	gpsW := p.GPSWeight
	if gpsW <= 0 {
		gpsW = 3
	}
	contentW := p.ContentWeight
	if contentW <= 0 {
		contentW = 1
	}
	maxN := p.MaxNGram
	if maxN <= 0 {
		maxN = 3
	}
	votes := make(map[string]float64)
	var pred Prediction
	for _, t := range tweets {
		if t.Geo != nil && p.Resolver != nil {
			loc, err := p.Resolver.Reverse(ctx, geo.Point{Lat: t.Geo.Lat, Lon: t.Geo.Lon})
			if err == nil {
				if ds := p.Gaz.ResolveNameInState(loc.County, loc.State); len(ds) == 1 {
					votes[ds[0].ID()] += gpsW
					pred.GPSVotes++
				}
			} else if !errors.Is(err, geocode.ErrNoMatch) {
				return Prediction{}, err
			}
		}
		if n := p.mentionVotes(t.Text, contentW, votes, maxN); n > 0 {
			pred.ContentVotes += n
		}
	}
	if len(votes) == 0 {
		return Prediction{}, ErrNoEvidence
	}
	// Deterministic winner: highest votes, ties by district ID.
	ids := make([]string, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
		pred.Total += votes[id]
	}
	sort.Strings(ids)
	bestID := ids[0]
	for _, id := range ids[1:] {
		if votes[id] > votes[bestID] {
			bestID = id
		}
	}
	d, err := p.Gaz.ByID(bestID)
	if err != nil {
		return Prediction{}, err
	}
	pred.District = d
	pred.Score = votes[bestID]
	return pred, nil
}

// mentionVotes scans tweet text for district names, adding (possibly split)
// votes; returns how many mentions were found.
func (p *Predictor) mentionVotes(text string, w float64, votes map[string]float64, maxN int) int {
	norm := admin.NormalizeName(text)
	if norm == "" {
		return 0
	}
	tokens := strings.Fields(norm)
	used := make([]bool, len(tokens))
	mentions := 0
	for n := maxN; n >= 1; n-- {
		for i := 0; i+n <= len(tokens); i++ {
			if anyUsed(used, i, n) {
				continue
			}
			frag := strings.Join(tokens[i:i+n], " ")
			ds := p.Gaz.ResolveName(frag)
			if len(ds) == 0 {
				continue
			}
			mentions++
			share := w / float64(len(ds))
			for _, d := range ds {
				votes[d.ID()] += share
			}
			markUsed(used, i, n)
		}
	}
	return mentions
}

func anyUsed(used []bool, i, n int) bool {
	for j := i; j < i+n; j++ {
		if used[j] {
			return true
		}
	}
	return false
}

func markUsed(used []bool, i, n int) {
	for j := i; j < i+n; j++ {
		used[j] = true
	}
}
