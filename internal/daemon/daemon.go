// Package daemon is the shared serving stack every STIR daemon boots from:
// one place that registers the operational flag groups (fault injection,
// overload protection), mounts the standard endpoints (/metrics, /healthz,
// /readyz), and wraps the business mux in admission control. Before this
// package, twitterd and geocoded each hand-rolled the same mux/metrics/fault
// wiring and exited via log.Fatal(http.ListenAndServe(...)) — no drain, no
// readiness, exit 1 on SIGTERM. Daemons now build a Stack and hand its
// Handler to an overload.Server.
package daemon

import (
	"flag"
	"net/http"
	"time"

	"stir/internal/obs"
	"stir/internal/overload"
	"stir/internal/resilience/fault"
)

// FaultConfig is the parsed server-side fault-injection schedule.
type FaultConfig struct {
	Rates fault.Rates
	Seed  int64
	// SlowBy is the latency one slow injection adds (default 25ms).
	SlowBy time.Duration
}

// Injector builds the armed injector, or nil when every rate is zero.
func (c FaultConfig) Injector(reg *obs.Registry) *fault.Injector {
	if !c.Rates.Any() {
		return nil
	}
	inj := fault.New(c.Seed, c.Rates, reg)
	if c.SlowBy > 0 {
		inj.SlowBy = c.SlowBy
	}
	return inj
}

// FaultFlags registers the shared -fault-* flags on fs (flag.CommandLine for
// daemons, a subcommand FlagSet otherwise), defaulting from the STIR_FAULT_*
// env knobs, and returns a closure producing the parsed config after parsing.
func FaultFlags(fs *flag.FlagSet) func() FaultConfig {
	env := fault.RatesFromEnv()
	f5xx := fs.Float64("fault-5xx", env.Error5xx, "injected 503 rate ("+fault.Env5xx+")")
	reset := fs.Float64("fault-reset", env.Reset, "injected connection-reset rate ("+fault.EnvReset+")")
	timeout := fs.Float64("fault-timeout", env.Timeout, "injected hold-then-504 rate ("+fault.EnvTimeout+")")
	corrupt := fs.Float64("fault-corrupt", env.Corrupt, "injected garbage-response rate ("+fault.EnvCorrupt+")")
	slow := fs.Float64("fault-slow", env.Slow, "injected latency-only rate ("+fault.EnvSlow+")")
	slowBy := fs.Duration("fault-slow-by", 25*time.Millisecond, "latency one slow injection adds")
	fseed := fs.Int64("fault-seed", fault.SeedFromEnv(1), "fault-injection schedule seed ("+fault.EnvSeed+")")
	return func() FaultConfig {
		return FaultConfig{
			Rates:  fault.Rates{Timeout: *timeout, Error5xx: *f5xx, Reset: *reset, Corrupt: *corrupt, Slow: *slow},
			Seed:   *fseed,
			SlowBy: *slowBy,
		}
	}
}

// OverloadConfig is the parsed admission-control and lifecycle tuning.
type OverloadConfig struct {
	// MaxInflight caps concurrent bulk requests (0 disables admission
	// control entirely — the limiter is nil and only deadline propagation
	// remains active).
	MaxInflight int
	// QueueDepth bounds the admission wait queue.
	QueueDepth int
	// TargetLatency enables AIMD adaptation of the in-flight cap; zero keeps
	// the cap fixed.
	TargetLatency time.Duration
	// DrainTimeout bounds the graceful shutdown drain.
	DrainTimeout time.Duration
}

// OverloadFlags registers the shared overload-protection flags on fs and
// returns a closure producing the parsed config after parsing.
func OverloadFlags(fs *flag.FlagSet) func() OverloadConfig {
	maxInflight := fs.Int("max-inflight", 256, "max concurrent requests before queueing (0 = unlimited)")
	queueDepth := fs.Int("queue-depth", 128, "admission queue depth; arrivals beyond it are shed")
	target := fs.Duration("target-latency", 0, "AIMD latency target; 0 keeps the in-flight cap fixed")
	drain := fs.Duration("drain-timeout", overload.DefaultDrainTimeout, "max wait for in-flight requests on shutdown")
	return func() OverloadConfig {
		return OverloadConfig{
			MaxInflight:   *maxInflight,
			QueueDepth:    *queueDepth,
			TargetLatency: *target,
			DrainTimeout:  *drain,
		}
	}
}

// Stack is one daemon's serving surface: the business mux plus the standard
// operational endpoints, wrapped in admission control.
type Stack struct {
	// Mux is the daemon's route table; mount business handlers on it.
	Mux *http.ServeMux
	// Handler is the full middleware-wrapped surface to serve.
	Handler http.Handler
	// Ready is the readiness flag /readyz reports; hand it to the
	// overload.Server so draining flips it.
	Ready *obs.Readiness
	// Limiter is the admission controller (nil when MaxInflight is 0).
	Limiter *overload.Limiter
}

// NewStack builds the standard daemon surface: /metrics, /healthz and
// /readyz mounted (and classified critical, so they are never shed), bulk
// traffic admitted through the overload limiter, deadlines propagated.
func NewStack(service string, cfg OverloadConfig, reg *obs.Registry) *Stack {
	reg = obs.Or(reg)
	s := &Stack{
		Mux:   http.NewServeMux(),
		Ready: &obs.Readiness{},
	}
	s.Mux.Handle("/metrics", obs.Handler(reg))
	s.Mux.Handle("/healthz", obs.HealthzHandler(service))
	s.Mux.Handle("/readyz", obs.ReadyzHandler(service, s.Ready))
	if cfg.MaxInflight > 0 {
		s.Limiter = overload.NewLimiter(overload.LimiterOptions{
			Service:       service,
			MaxInflight:   cfg.MaxInflight,
			QueueDepth:    cfg.QueueDepth,
			TargetLatency: cfg.TargetLatency,
			Metrics:       reg,
		})
	}
	s.Handler = overload.Middleware(overload.MiddlewareOptions{
		Service: service,
		Limiter: s.Limiter,
		Metrics: reg,
	}, s.Mux)
	return s
}
