// Package daemon is the shared serving stack every STIR daemon boots from:
// one place that registers the operational flag groups (fault injection,
// overload protection), mounts the standard endpoints (/metrics, /healthz,
// /readyz), and wraps the business mux in admission control. Before this
// package, twitterd and geocoded each hand-rolled the same mux/metrics/fault
// wiring and exited via log.Fatal(http.ListenAndServe(...)) — no drain, no
// readiness, exit 1 on SIGTERM. Daemons now build a Stack and hand its
// Handler to an overload.Server.
package daemon

import (
	"context"
	"flag"
	"net/http"
	"net/http/pprof"
	"time"

	"stir/internal/logx"
	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/overload"
	"stir/internal/resilience/fault"
	"stir/internal/storage"
)

// FaultConfig is the parsed server-side fault-injection schedule.
type FaultConfig struct {
	Rates fault.Rates
	Seed  int64
	// SlowBy is the latency one slow injection adds (default 25ms).
	SlowBy time.Duration
}

// Injector builds the armed injector, or nil when every rate is zero.
func (c FaultConfig) Injector(reg *obs.Registry) *fault.Injector {
	if !c.Rates.Any() {
		return nil
	}
	inj := fault.New(c.Seed, c.Rates, reg)
	if c.SlowBy > 0 {
		inj.SlowBy = c.SlowBy
	}
	return inj
}

// FaultFlags registers the shared -fault-* flags on fs (flag.CommandLine for
// daemons, a subcommand FlagSet otherwise), defaulting from the STIR_FAULT_*
// env knobs, and returns a closure producing the parsed config after parsing.
func FaultFlags(fs *flag.FlagSet) func() FaultConfig {
	env := fault.RatesFromEnv()
	f5xx := fs.Float64("fault-5xx", env.Error5xx, "injected 503 rate ("+fault.Env5xx+")")
	reset := fs.Float64("fault-reset", env.Reset, "injected connection-reset rate ("+fault.EnvReset+")")
	timeout := fs.Float64("fault-timeout", env.Timeout, "injected hold-then-504 rate ("+fault.EnvTimeout+")")
	corrupt := fs.Float64("fault-corrupt", env.Corrupt, "injected garbage-response rate ("+fault.EnvCorrupt+")")
	slow := fs.Float64("fault-slow", env.Slow, "injected latency-only rate ("+fault.EnvSlow+")")
	slowBy := fs.Duration("fault-slow-by", 25*time.Millisecond, "latency one slow injection adds")
	fseed := fs.Int64("fault-seed", fault.SeedFromEnv(1), "fault-injection schedule seed ("+fault.EnvSeed+")")
	return func() FaultConfig {
		return FaultConfig{
			Rates:  fault.Rates{Timeout: *timeout, Error5xx: *f5xx, Reset: *reset, Corrupt: *corrupt, Slow: *slow},
			Seed:   *fseed,
			SlowBy: *slowBy,
		}
	}
}

// OverloadConfig is the parsed admission-control and lifecycle tuning.
type OverloadConfig struct {
	// MaxInflight caps concurrent bulk requests (0 disables admission
	// control entirely — the limiter is nil and only deadline propagation
	// remains active).
	MaxInflight int
	// QueueDepth bounds the admission wait queue.
	QueueDepth int
	// TargetLatency enables AIMD adaptation of the in-flight cap; zero keeps
	// the cap fixed.
	TargetLatency time.Duration
	// DrainTimeout bounds the graceful shutdown drain.
	DrainTimeout time.Duration
}

// OverloadFlags registers the shared overload-protection flags on fs and
// returns a closure producing the parsed config after parsing.
func OverloadFlags(fs *flag.FlagSet) func() OverloadConfig {
	maxInflight := fs.Int("max-inflight", 256, "max concurrent requests before queueing (0 = unlimited)")
	queueDepth := fs.Int("queue-depth", 128, "admission queue depth; arrivals beyond it are shed")
	target := fs.Duration("target-latency", 0, "AIMD latency target; 0 keeps the in-flight cap fixed")
	drain := fs.Duration("drain-timeout", overload.DefaultDrainTimeout, "max wait for in-flight requests on shutdown")
	return func() OverloadConfig {
		return OverloadConfig{
			MaxInflight:   *maxInflight,
			QueueDepth:    *queueDepth,
			TargetLatency: *target,
			DrainTimeout:  *drain,
		}
	}
}

// DiskFlags registers the shared disk-budget flags on fs and returns a
// closure producing the parsed storage budget after parsing. Zero (the
// default) disables the corresponding watermark; the store still degrades
// on a real ENOSPC.
func DiskFlags(fs *flag.FlagSet) func() storage.Budget {
	soft := fs.Int64("disk-soft", 0, "soft disk watermark in bytes: crossing it triggers emergency compaction (0 = off)")
	hard := fs.Int64("disk-hard", 0, "hard disk watermark in bytes: crossing it degrades the store to read-only (0 = off)")
	return func() storage.Budget {
		return storage.Budget{SoftBytes: *soft, HardBytes: *hard}
	}
}

// WatchDegraded polls degraded() on every tick and mirrors it into ready's
// degraded bit: /readyz answers 503 while the watched store is hard-degraded
// (load balancers route around the daemon), while /healthz — liveness — and
// the critical-class /metrics and /debug/ surfaces keep answering. Runs
// until ctx ends; call it in a goroutine next to the server.
func WatchDegraded(ctx context.Context, ready *obs.Readiness, every time.Duration, degraded func() bool) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ready.SetDegraded(degraded())
		}
	}
}

// TraceConfig is the parsed distributed-tracing tuning.
type TraceConfig struct {
	// Sample is the head-sampling probability for locally-originated traces
	// in [0,1]; 0 disables span creation (the /debug/trace ring stays empty).
	Sample float64
	// RingSize bounds the finished-span ring served at /debug/trace.
	RingSize int
	// Slow is the slow-request log threshold; 0 disables the slow log.
	Slow time.Duration
	// Seed fixes the trace-ID stream so chaos runs keep the same sampled set.
	Seed int64
}

// TraceFlags registers the shared -trace-* flags on fs and returns a closure
// producing the parsed config after parsing.
func TraceFlags(fs *flag.FlagSet) func() TraceConfig {
	sample := fs.Float64("trace-sample", 0, "head-sampling probability for distributed traces [0,1]")
	ring := fs.Int("trace-ring", trace.DefaultRingSize, "finished-span ring capacity served at /debug/trace")
	slow := fs.Duration("trace-slow", 0, "slow-request log threshold (0 disables)")
	seed := fs.Int64("trace-seed", 1, "trace ID stream seed (fixes the sampled-trace set)")
	return func() TraceConfig {
		return TraceConfig{Sample: *sample, RingSize: *ring, Slow: *slow, Seed: *seed}
	}
}

// Stack is one daemon's serving surface: the business mux plus the standard
// operational endpoints, wrapped in admission control and trace extraction.
type Stack struct {
	// Mux is the daemon's route table; mount business handlers on it.
	Mux *http.ServeMux
	// Handler is the full middleware-wrapped surface to serve.
	Handler http.Handler
	// Ready is the readiness flag /readyz reports; hand it to the
	// overload.Server so draining flips it.
	Ready *obs.Readiness
	// Limiter is the admission controller (nil when MaxInflight is 0).
	Limiter *overload.Limiter
	// Tracer owns the daemon's span ring; pass it to clients and business
	// code that open child spans.
	Tracer *trace.Tracer
	// Log is the daemon's structured logger (never nil after NewStackOpts;
	// discard via a logger writing to io.Discard).
	Log *logx.Logger
}

// StackOptions configures NewStackOpts.
type StackOptions struct {
	// Service names the daemon in metrics, spans and log lines.
	Service string
	// Overload is the admission-control tuning.
	Overload OverloadConfig
	// Trace is the distributed-tracing tuning.
	Trace TraceConfig
	// Metrics receives every series (nil means obs.Default).
	Metrics *obs.Registry
	// Log receives structured events (nil builds a stderr logger for Service).
	Log *logx.Logger
}

// NewStack builds the standard daemon surface: /metrics, /healthz and
// /readyz mounted (and classified critical, so they are never shed), bulk
// traffic admitted through the overload limiter, deadlines propagated.
// Tracing is off; use NewStackOpts to turn it on.
func NewStack(service string, cfg OverloadConfig, reg *obs.Registry) *Stack {
	return NewStackOpts(StackOptions{Service: service, Overload: cfg, Metrics: reg})
}

// NewStackOpts is NewStack plus the observability surface: a traceparent-
// extracting middleware outermost (so sheds are traced too), the span ring
// at /debug/trace, the pprof handlers at /debug/pprof/, runtime health
// gauges, and a structured slow-request log.
func NewStackOpts(opts StackOptions) *Stack {
	reg := obs.Or(opts.Metrics)
	logger := opts.Log
	if logger == nil {
		logger = logx.New(nil, opts.Service)
	}
	s := &Stack{
		Mux:   http.NewServeMux(),
		Ready: &obs.Readiness{},
		Log:   logger,
		Tracer: trace.New(trace.Options{
			Service:  opts.Service,
			Sample:   opts.Trace.Sample,
			RingSize: opts.Trace.RingSize,
			Seed:     opts.Trace.Seed,
			Metrics:  reg,
		}),
	}
	s.Mux.Handle("/metrics", obs.Handler(reg))
	s.Mux.Handle("/healthz", obs.HealthzHandler(opts.Service))
	s.Mux.Handle("/readyz", obs.ReadyzHandler(opts.Service, s.Ready))
	s.Mux.Handle("/debug/trace", s.Tracer.DebugHandler())
	s.Mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.Mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.Mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.Mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.Mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	RegisterRuntimeMetrics(reg, opts.Service)
	if opts.Overload.MaxInflight > 0 {
		s.Limiter = overload.NewLimiter(overload.LimiterOptions{
			Service:       opts.Service,
			MaxInflight:   opts.Overload.MaxInflight,
			QueueDepth:    opts.Overload.QueueDepth,
			TargetLatency: opts.Overload.TargetLatency,
			Metrics:       reg,
		})
	}
	// Trace extraction wraps admission control so a shed request still
	// produces a span carrying its shed reason.
	s.Handler = trace.Middleware(trace.MiddlewareOptions{
		Tracer: s.Tracer,
		Slow:   opts.Trace.Slow,
		SlowLog: func(r *http.Request, status int, d time.Duration, traceID string) {
			kv := []any{"method", r.Method, "path", r.URL.Path, "status", status, "dur", d.Round(time.Microsecond)}
			if traceID != "" {
				kv = append(kv, "trace", traceID)
			}
			logger.Warn(nil, "slow request", kv...)
		},
	}, overload.Middleware(overload.MiddlewareOptions{
		Service: opts.Service,
		Limiter: s.Limiter,
		Metrics: reg,
	}, s.Mux))
	return s
}
