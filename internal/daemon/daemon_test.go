package daemon

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stir/internal/obs"
	"stir/internal/overload"
)

func get(t *testing.T, h http.Handler, path string, hdr http.Header) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestNewStackMountsOperationalEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	stack := NewStack("testd", OverloadConfig{MaxInflight: 4, QueueDepth: 2}, reg)

	if rec := get(t, stack.Handler, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	if rec := get(t, stack.Handler, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 while serving", rec.Code)
	}
	if rec := get(t, stack.Handler, "/metrics", nil); rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", rec.Code)
	} else if !strings.Contains(rec.Body.String(), "stir_overload_limit") {
		t.Fatal("/metrics does not expose the overload gauges")
	}

	// Draining flips readiness but not liveness.
	stack.Ready.SetReady(false)
	if rec := get(t, stack.Handler, "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", rec.Code)
	}
	if rec := get(t, stack.Handler, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", rec.Code)
	}
}

func TestNewStackShedsBulkButNotCritical(t *testing.T) {
	reg := obs.NewRegistry()
	stack := NewStack("testd", OverloadConfig{MaxInflight: 1, QueueDepth: -1}, reg)
	block := make(chan struct{})
	entered := make(chan struct{})
	stack.Mux.HandleFunc("/bulk", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	})
	defer close(block)

	go func() {
		req := httptest.NewRequest("GET", "/bulk", nil)
		stack.Handler.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-entered

	// The single in-flight slot is held and queueing is disabled: bulk
	// arrivals shed, critical endpoints still answer.
	if rec := get(t, stack.Handler, "/bulk", nil); rec.Code != overload.ShedStatus {
		t.Fatalf("saturated bulk request = %d, want %d", rec.Code, overload.ShedStatus)
	} else if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response carried no Retry-After")
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if rec := get(t, stack.Handler, path, nil); rec.Code != http.StatusOK {
			t.Fatalf("%s under saturation = %d, want 200", path, rec.Code)
		}
	}
	if m, ok := reg.Snapshot().Get("stir_overload_shed_total", "service", "testd", "reason", overload.ShedQueueFull); !ok || m.Value != 1 {
		t.Fatalf("shed counter = %+v ok=%v, want 1", m, ok)
	}
}

func TestNewStackZeroMaxInflightDisablesAdmission(t *testing.T) {
	stack := NewStack("testd", OverloadConfig{}, obs.Discard)
	if stack.Limiter != nil {
		t.Fatal("MaxInflight 0 built a limiter, want nil")
	}
	stack.Mux.HandleFunc("/bulk", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	if rec := get(t, stack.Handler, "/bulk", nil); rec.Code != http.StatusOK {
		t.Fatalf("unlimited bulk request = %d, want 200", rec.Code)
	}
	// Deadline propagation stays active even without a limiter.
	hdr := http.Header{}
	hdr.Set(overload.DeadlineHeader, "0")
	if rec := get(t, stack.Handler, "/bulk", hdr); rec.Code != overload.ShedStatus {
		t.Fatalf("doomed request without limiter = %d, want %d", rec.Code, overload.ShedStatus)
	}
}

func TestOverloadFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	over := OverloadFlags(fs)
	err := fs.Parse([]string{
		"-max-inflight", "32",
		"-queue-depth", "7",
		"-target-latency", "150ms",
		"-drain-timeout", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := over()
	want := OverloadConfig{
		MaxInflight:   32,
		QueueDepth:    7,
		TargetLatency: 150 * time.Millisecond,
		DrainTimeout:  3 * time.Second,
	}
	if cfg != want {
		t.Fatalf("parsed config = %+v, want %+v", cfg, want)
	}
}

func TestFaultFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	faults := FaultFlags(fs)
	err := fs.Parse([]string{
		"-fault-5xx", "0.25",
		"-fault-slow", "0.5",
		"-fault-slow-by", "40ms",
		"-fault-seed", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults()
	if cfg.Rates.Error5xx != 0.25 || cfg.Rates.Slow != 0.5 {
		t.Fatalf("parsed rates = %+v", cfg.Rates)
	}
	if cfg.Seed != 7 || cfg.SlowBy != 40*time.Millisecond {
		t.Fatalf("seed/slowBy = %d/%v", cfg.Seed, cfg.SlowBy)
	}
	inj := cfg.Injector(obs.Discard)
	if inj == nil {
		t.Fatal("non-zero rates produced a nil injector")
	}
	if inj.SlowBy != 40*time.Millisecond {
		t.Fatalf("injector SlowBy = %v, want 40ms", inj.SlowBy)
	}
	if (FaultConfig{}).Injector(obs.Discard) != nil {
		t.Fatal("zero rates produced an injector, want nil")
	}
}
