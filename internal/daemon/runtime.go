package daemon

import (
	"runtime"
	"sync"
	"time"

	"stir/internal/obs"
)

// Runtime health gauge names, published per-service by every Stack.
const (
	RuntimeGoroutinesMetric = "stir_runtime_goroutines"
	RuntimeHeapBytesMetric  = "stir_runtime_heap_bytes"
	RuntimeGCPauseMetric    = "stir_runtime_gc_pause_seconds_total"
	RuntimeUptimeMetric     = "stir_runtime_uptime_seconds"
)

// memSampler caches runtime.ReadMemStats reads. ReadMemStats stops the world;
// a scrape hitting three heap-derived gauges must not pay (or inflict) that
// three times, and aggressive scrapers must not turn it into a DoS on the GC.
type memSampler struct {
	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
	ttl  time.Duration
	now  func() time.Time
}

func newMemSampler(ttl time.Duration) *memSampler {
	return &memSampler{ttl: ttl, now: time.Now}
}

// stats returns the cached MemStats, refreshing when older than ttl.
func (s *memSampler) stats() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := s.now(); s.last.IsZero() || now.Sub(s.last) >= s.ttl {
		runtime.ReadMemStats(&s.ms)
		s.last = now
	}
	return s.ms
}

// processStart anchors the uptime gauge.
var processStart = time.Now()

// RegisterRuntimeMetrics publishes the process health gauges on reg under a
// service label: live goroutines, heap in use, cumulative GC pause, and
// uptime. Pull-mode: values are read at scrape time, with heap stats served
// from a ~1s cache so scrapes stay cheap. Re-registration is idempotent.
func RegisterRuntimeMetrics(reg *obs.Registry, service string) {
	reg = obs.Or(reg)
	sampler := newMemSampler(time.Second)
	reg.GaugeFunc(RuntimeGoroutinesMetric, func() float64 {
		return float64(runtime.NumGoroutine())
	}, "service", service)
	reg.GaugeFunc(RuntimeHeapBytesMetric, func() float64 {
		return float64(sampler.stats().HeapAlloc)
	}, "service", service)
	reg.GaugeFunc(RuntimeGCPauseMetric, func() float64 {
		return float64(sampler.stats().PauseTotalNs) / 1e9
	}, "service", service)
	reg.GaugeFunc(RuntimeUptimeMetric, func() float64 {
		return time.Since(processStart).Seconds()
	}, "service", service)
}
