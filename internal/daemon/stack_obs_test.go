package daemon

import (
	"bufio"
	"encoding/json"
	"flag"
	"net/http"
	"strings"
	"testing"
	"time"

	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/overload"
)

func TestStackTraceEndpointAndPropagation(t *testing.T) {
	reg := obs.NewRegistry()
	stack := NewStackOpts(StackOptions{
		Service:  "testd",
		Overload: OverloadConfig{MaxInflight: 4, QueueDepth: 2},
		Trace:    TraceConfig{Sample: 1, RingSize: 64},
		Metrics:  reg,
	})
	stack.Mux.HandleFunc("/bulk", func(w http.ResponseWriter, r *http.Request) {
		sp := trace.FromContext(r.Context())
		if sp == nil {
			t.Error("handler context carries no span")
			return
		}
		sp.Annotate("handled", "yes")
		w.WriteHeader(http.StatusOK)
	})

	// Inbound sampled traceparent must be continued, not re-rooted.
	parent := trace.FormatTraceparent(
		trace.TraceID{0xaa, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		trace.SpanID{0xbb, 1, 2, 3, 4, 5, 6, 7}, true)
	hdr := http.Header{}
	hdr.Set(trace.Header, parent)
	if rec := get(t, stack.Handler, "/bulk", hdr); rec.Code != http.StatusOK {
		t.Fatalf("/bulk = %d", rec.Code)
	}

	rec := get(t, stack.Handler, "/debug/trace", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace = %d", rec.Code)
	}
	var recs []trace.Record
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var r trace.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL: %v", err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1 (operational endpoints must not trace)", len(recs))
	}
	got := recs[0]
	if got.Trace != "aa0102030405060708090a0b0c0d0e0f" || got.Parent != "bb01020304050607" {
		t.Fatalf("span did not continue the inbound trace: %+v", got)
	}
	if got.Service != "testd" || got.Name != "GET /bulk" || got.Status != 200 {
		t.Fatalf("span fields: %+v", got)
	}
	annots := map[string]string{}
	for _, a := range got.Annots {
		annots[a.Key] = a.Val
	}
	if annots["handled"] != "yes" {
		t.Fatalf("handler annotation missing: %v", got.Annots)
	}
	if _, ok := annots["queue_wait"]; !ok {
		t.Fatalf("overload queue_wait annotation missing: %v", got.Annots)
	}
}

func TestStackTracesSheds(t *testing.T) {
	reg := obs.NewRegistry()
	stack := NewStackOpts(StackOptions{
		Service:  "testd",
		Overload: OverloadConfig{MaxInflight: 1, QueueDepth: -1},
		Trace:    TraceConfig{Sample: 1},
		Metrics:  reg,
	})
	block := make(chan struct{})
	entered := make(chan struct{})
	stack.Mux.HandleFunc("/bulk", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, stack.Handler, "/bulk", nil)
	}()
	<-entered

	if rec := get(t, stack.Handler, "/bulk", nil); rec.Code != overload.ShedStatus {
		t.Fatalf("saturated request = %d, want %d", rec.Code, overload.ShedStatus)
	}
	close(block)
	<-done

	var shedRec *trace.Record
	for _, r := range stack.Tracer.Records() {
		for _, a := range r.Annots {
			if a.Key == "shed" {
				rr := r
				shedRec = &rr
			}
		}
	}
	if shedRec == nil {
		t.Fatal("no span carries a shed annotation")
	}
	if shedRec.Status != overload.ShedStatus {
		t.Fatalf("shed span status = %d, want %d", shedRec.Status, overload.ShedStatus)
	}
}

func TestStackMountsPprof(t *testing.T) {
	stack := NewStackOpts(StackOptions{Service: "testd", Metrics: obs.NewRegistry()})
	rec := get(t, stack.Handler, "/debug/pprof/", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, body %q...", rec.Code, rec.Body.String()[:min(80, rec.Body.Len())])
	}
	// One concrete profile endpoint (cheap, no sampling duration).
	if rec := get(t, stack.Handler, "/debug/pprof/cmdline", nil); rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", rec.Code)
	}
}

func TestStackDebugSurvivesSaturation(t *testing.T) {
	stack := NewStackOpts(StackOptions{
		Service:  "testd",
		Overload: OverloadConfig{MaxInflight: 1, QueueDepth: -1},
		Metrics:  obs.NewRegistry(),
	})
	block := make(chan struct{})
	entered := make(chan struct{})
	stack.Mux.HandleFunc("/bulk", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	})
	defer close(block)
	go get(t, stack.Handler, "/bulk", nil)
	<-entered

	// The debug surface is classified critical: it must answer exactly when
	// the daemon is saturated, because that is when you need it.
	for _, p := range []string{"/debug/trace", "/debug/pprof/cmdline"} {
		if rec := get(t, stack.Handler, p, nil); rec.Code != http.StatusOK {
			t.Fatalf("%s under saturation = %d, want 200", p, rec.Code)
		}
	}
}

func TestRuntimeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterRuntimeMetrics(reg, "testd")
	snap := reg.Snapshot()
	if m, ok := snap.Get(RuntimeGoroutinesMetric, "service", "testd"); !ok || m.Value < 1 {
		t.Fatalf("goroutines gauge = %+v ok=%v", m, ok)
	}
	if m, ok := snap.Get(RuntimeHeapBytesMetric, "service", "testd"); !ok || m.Value <= 0 {
		t.Fatalf("heap gauge = %+v ok=%v", m, ok)
	}
	if m, ok := snap.Get(RuntimeGCPauseMetric, "service", "testd"); !ok || m.Value < 0 {
		t.Fatalf("gc pause gauge = %+v ok=%v", m, ok)
	}
	if m, ok := snap.Get(RuntimeUptimeMetric, "service", "testd"); !ok || m.Value <= 0 {
		t.Fatalf("uptime gauge = %+v ok=%v", m, ok)
	}
	// Re-registration is idempotent (GaugeFunc replaces).
	RegisterRuntimeMetrics(reg, "testd")
}

func TestMemSamplerCaches(t *testing.T) {
	s := newMemSampler(time.Hour)
	now := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return now }
	first := s.stats()
	// Within the TTL the cached stats are returned verbatim even if the heap
	// moved; a forced refresh past the TTL re-reads.
	if again := s.stats(); again.HeapAlloc != first.HeapAlloc || again.NumGC != first.NumGC {
		t.Fatal("sampler re-read inside TTL")
	}
	now = now.Add(2 * time.Hour)
	_ = s.stats() // must not panic; value refreshed
}

func TestTraceFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	traceCfg := TraceFlags(fs)
	if err := fs.Parse([]string{"-trace-sample", "0.25", "-trace-ring", "128", "-trace-slow", "200ms", "-trace-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	cfg := traceCfg()
	want := TraceConfig{Sample: 0.25, RingSize: 128, Slow: 200 * time.Millisecond, Seed: 9}
	if cfg != want {
		t.Fatalf("parsed config = %+v, want %+v", cfg, want)
	}
	// Defaults.
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	def := TraceFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg := def(); cfg.Sample != 0 || cfg.RingSize != trace.DefaultRingSize || cfg.Seed != 1 {
		t.Fatalf("default config = %+v", cfg)
	}
}
