package stir

import (
	"context"
	"net/http/httptest"
	"time"

	"stir/internal/eventdetect"
	"stir/internal/twitter"
)

// Real-time surface: watch the dataset's live stream and alert on keyword
// bursts, Toretter's deployment mode ("the alert of the system was far
// faster than the rapid broadcast of announcement of JMA").

// Alert is one online detection: when it fired, how hot the window was, and
// where the event is estimated to be.
type Alert = eventdetect.Alert

// MonitorOptions tune the online detector.
type MonitorOptions struct {
	// Keywords to track (default: earthquake, shaking — Toretter's pair).
	Keywords []string
	// Window is the sliding burst window in event time (default 10m).
	Window time.Duration
	// MinCount and Factor gate the alarm (defaults 5 and 4).
	MinCount int
	Factor   float64
	// WarmupCount is how many reports establish the background (default 20).
	WarmupCount int
	// Method picks the location estimator (default particle filter).
	Method EstimationMethod
	// Seed fixes estimator randomness.
	Seed int64
}

// MonitorEvents consumes the dataset's live stream until ctx is cancelled or
// onDetect returns false. res supplies refined profile districts;
// reliability supplies the §V weights (nil = unweighted). Only tweets posted
// after the call starts flow through the stream, so start the monitor before
// injecting events.
func (d *Dataset) MonitorEvents(ctx context.Context, res *Result, reliability map[int64]float64, opts MonitorOptions, onDetect func(Alert) bool) error {
	if len(opts.Keywords) == 0 {
		opts.Keywords = []string{"earthquake", "shaking"}
	}
	srv := httptest.NewServer(twitter.NewAPIServer(d.Service, twitter.ServerOptions{}))
	defer srv.Close()
	var profiles map[twitter.UserID]*District
	if res != nil {
		profiles = res.ProfileDistrict
	}
	m := &eventdetect.Monitor{
		Client:          twitter.NewClient(srv.URL),
		Keywords:        opts.Keywords,
		ProfileDistrict: profiles,
		Reliability:     reliability,
		Window:          opts.Window,
		MinCount:        opts.MinCount,
		Factor:          opts.Factor,
		WarmupCount:     opts.WarmupCount,
		Method:          opts.Method,
		Bounds:          d.Gazetteer.Bounds(),
		Seed:            opts.Seed,
		OnDetect:        onDetect,
	}
	return m.Run(ctx)
}

// PostTweet publishes a tweet into the dataset's live platform — the hook
// examples and tests use to feed the monitor.
func (d *Dataset) PostTweet(user int64, text string, at time.Time, lat, lon float64, hasGeo bool) error {
	var tag *twitter.GeoTag
	if hasGeo {
		tag = &twitter.GeoTag{Lat: lat, Lon: lon}
	}
	_, err := d.Service.PostTweet(twitter.UserID(user), text, at, tag)
	return err
}

// SomeUserIDs returns up to n user IDs from the dataset, ascending.
func (d *Dataset) SomeUserIDs(n int) []int64 {
	out := make([]int64, 0, n)
	d.Service.EachUser(func(u *twitter.User) bool {
		out = append(out, int64(u.ID))
		return len(out) < n
	})
	return out
}
