package stir_test

import (
	"context"
	"fmt"
	"log"

	"stir"
)

// Example demonstrates the core flow: generate, analyse, inspect the Top-k
// distribution. Output is deterministic for a fixed seed.
func Example() {
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 1, Users: 800})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ds.Analyze(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	a := res.Analysis
	fmt.Printf("final users: %d\n", a.Users)
	fmt.Printf("Top-1 is largest Top group: %v\n",
		a.Stat(stir.Top1).Users >= a.Stat(stir.Top2).Users)
	fmt.Printf("shares sum to 1: %v\n", shareSum(&a) > 0.999 && shareSum(&a) < 1.001)
	// Output:
	// final users: 26
	// Top-1 is largest Top group: true
	// shares sum to 1: true
}

func shareSum(a *stir.Analysis) float64 {
	var s float64
	for _, g := range stir.Groups() {
		s += a.Stat(g).UserShare
	}
	return s
}

// ExampleResult_ReliabilityWeights shows deriving the §V weights.
func ExampleResult_ReliabilityWeights() {
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 2, Users: 800})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ds.Analyze(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	weights := res.ReliabilityWeights(stir.WeightMatchShare)
	inRange := true
	for _, w := range weights {
		if w < 0 || w > 1 {
			inRange = false
		}
	}
	fmt.Printf("weights for %d users, all in [0,1]: %v\n", len(weights), inRange)
	// Output:
	// weights for 18 users, all in [0,1]: true
}
