package main

import (
	"flag"
	"fmt"
	"os"

	"stir/internal/obs"
	"stir/internal/storage"
)

// runFsck is the operator's door into the store's durability machinery:
// verify a checkpoint directory record-by-record, quarantine-and-repair
// damage, take an online backup, or rebuild a directory from one.
//
//	stir fsck -dir data/ckpt                    # verify, report, exit 1 if dirty
//	stir fsck -dir data/ckpt -repair            # quarantine damage, rewrite segments
//	stir fsck -dir data/ckpt -backup snap.seg   # verified snapshot to a file
//	stir fsck -dir new/ckpt -restore snap.seg   # materialise a snapshot as a store
//	stir fsck -dir data/ckpt -du                # per-namespace disk usage
func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory to check (required)")
	verify := fs.Bool("verify", true, "re-read and CRC-verify every record; exit 1 unless clean")
	repair := fs.Bool("repair", false, "rewrite damaged segments, preserving bad ranges under quarantine/")
	backup := fs.String("backup", "", "write a verified snapshot of the live records to this file")
	restore := fs.String("restore", "", "restore this snapshot into -dir (must hold no segments)")
	du := fs.Bool("du", false, "report per-namespace disk usage and reclaimable bytes")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("fsck: -dir is required")
	}
	if *restore != "" && (*repair || *backup != "") {
		return fmt.Errorf("fsck: -restore cannot be combined with -repair or -backup")
	}

	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			return err
		}
		defer f.Close()
		rep, err := storage.RestoreSnapshot(*dir, f, storage.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("fsck: restored %d records (%d bytes) into %s\n", rep.Records, rep.Bytes, *dir)
		// Fall through to the verify of the freshly restored store.
	}

	store, err := storage.Open(*dir, storage.Options{Metrics: obs.Discard})
	if err != nil {
		return fmt.Errorf("fsck: open: %w", err)
	}
	defer store.Close()

	// What Open itself had to do tells the first half of the story: torn
	// tails it truncated, corrupt ranges it skipped, records it salvaged.
	openRep := store.ScrubReport()
	fmt.Printf("fsck: open: %s\n", openRep.String())

	if *repair {
		rep, err := store.Repair()
		if err != nil {
			return fmt.Errorf("fsck: repair: %w", err)
		}
		if rep.QuarantinedRanges == 0 {
			fmt.Println("fsck: repair: nothing to repair")
		} else {
			fmt.Printf("fsck: repair: rewrote %d segments, quarantined %d ranges (%d bytes):\n",
				rep.RewrittenSegments, rep.QuarantinedRanges, rep.QuarantinedBytes)
			for _, q := range rep.QuarantineFiles {
				fmt.Printf("fsck:   %s\n", q)
			}
		}
	}

	if *backup != "" {
		f, err := os.Create(*backup)
		if err != nil {
			return err
		}
		rep, err := store.Snapshot(f)
		if err != nil {
			f.Close()
			os.Remove(*backup)
			return fmt.Errorf("fsck: backup: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("fsck: backup: %d records (%d bytes) -> %s\n", rep.Records, rep.Bytes, *backup)
	}

	if *du {
		u, err := store.Usage()
		if err != nil {
			return fmt.Errorf("fsck: du: %w", err)
		}
		fmt.Printf("fsck: du: %s\n", *dir)
		fmt.Printf("fsck:   segments     %8d bytes in %d files\n", u.SegmentBytes, u.Segments)
		fmt.Printf("fsck:   live         %8d bytes\n", u.LiveBytes)
		fmt.Printf("fsck:   reclaimable  %8d bytes (freed by compaction)\n", u.ReclaimableBytes)
		fmt.Printf("fsck:   tmp          %8d bytes in %d files (swept on open)\n", u.TmpBytes, u.TmpFiles)
		fmt.Printf("fsck:   quarantine   %8d bytes in %d files\n", u.QuarantineBytes, u.QuarantineFiles)
	}

	if *verify {
		rep, err := store.Scrub()
		if err != nil {
			return fmt.Errorf("fsck: verify: %w", err)
		}
		fmt.Printf("fsck: verify: %s\n", rep.String())
		if !rep.Clean() {
			return fmt.Errorf("fsck: store is damaged (run with -repair to quarantine and rewrite)")
		}
		fmt.Println("fsck: clean")
	}
	return nil
}
