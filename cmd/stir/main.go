// Command stir is the library's CLI: generate a synthetic dataset, run the
// paper's refinement-and-grouping analysis, and report the figures.
//
// Subcommands:
//
//	stir analyze [-dataset korean|world] [-users N] [-seed S] [-csv]
//	             [-continue-on-error] [-fault-rate R] [-fault-seed S]
//	    run the §III pipeline and print the funnel and the per-group figures;
//	    -continue-on-error degrades instead of aborting on per-user failures,
//	    -fault-rate injects a deterministic geocode fault schedule (chaos runs)
//	stir event   [-users N] [-seed S] [-method particle|kalman|median|centroid]
//	    inject an earthquake and compare unweighted vs reliability-weighted
//	    location estimation (the paper's §V application)
//	stir groups  [-users N] [-seed S] [-n K]
//	    dump the first K per-user merged-and-ordered string lists (Table II)
//	stir export  [-dataset korean|world] [-users N] [-seed S]
//	             [-what collection|strings|csv] [-out FILE]
//	    export the raw JSONL collection, the Table-II location strings, or
//	    the per-group CSV
//	stir serve   [-addr :8032] [-dataset korean|world] [-users N] [-seed S]
//	    run the analysis and keep serving its metrics: GET /metrics exposes
//	    the funnel gauges, stage timings and cache stats; GET /healthz
//	    reports liveness
//	stir stream  [-addr :8033] [-dataset korean|world] [-users N] [-seed S]
//	             [-shards N] [-buffer N] [-drop] [-rate N] [-track S]
//	             [-checkpoint DIR] [-checkpoint-every D] [-duration D]
//	             [-geocode URL] [-trace-sample P] [-trace-ring N]
//	    run the live ingestion engine: replay the dataset's collection
//	    through the simulated Streaming API into internal/stream and serve
//	    the incremental analysis on /v1/groups, /v1/users/{id}, /v1/stats
//	stir worker  [-addr :8041] [-name w1] [-checkpoint DIR] [-shards N]
//	    run one cluster shard: a stream engine with its own checkpoint
//	    store behind the cluster worker API, fed only by router forwards
//	stir router  [-addr :8040] -workers name=url,... [-replicas N]
//	             [-partitions N] [-handoff-timeout D] [-journal N]
//	             [-heartbeat D] [-suspect-after D] [-down-after D]
//	             [-auto-failover]
//	    join the named workers into a rendezvous-hash ring, replay the
//	    dataset through the routed ingest path, and serve the merged
//	    scatter-gather analysis on /v1/groups, /v1/stats, /v1/users/{id};
//	    a heartbeat failure detector suspects silent workers (forwards
//	    defer to the journal), downs them, optionally fails them over, and
//	    heals them back in when they answer again (see /cluster/v1/members)
//	stir trace   [-addrs host:port,...] [-trace PREFIX] [-n N] [-json]
//	    fetch the finished-span rings from the daemons' /debug/trace
//	    endpoints, merge them by trace ID, and print each cross-process
//	    request tree; unreachable daemons are warned about and skipped,
//	    and the partial forest still prints (fails only if none answer)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"stir"
	"stir/internal/admin"
	"stir/internal/daemon"
	"stir/internal/geocode"
	"stir/internal/geofast"
	"stir/internal/obs"
	"stir/internal/overload"
	"stir/internal/report"
	"stir/internal/resilience/fault"
	"stir/internal/storage"
	"stir/internal/stream"
	"stir/internal/synth"
	"stir/internal/textnorm"
	"stir/internal/twitter"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = runAnalyze(os.Args[2:])
	case "event":
		err = runEvent(os.Args[2:])
	case "groups":
		err = runGroups(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	case "monitor":
		err = runMonitor(os.Args[2:])
	case "scenario":
		err = runScenario(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "stream":
		err = runStream(os.Args[2:])
	case "fsck":
		err = runFsck(os.Args[2:])
	case "router":
		err = runRouter(os.Args[2:])
	case "worker":
		err = runWorker(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "stir: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stir:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: stir <analyze|event|groups> [flags]
  analyze  run the refinement pipeline and print the paper's figures
  event    compare unweighted vs reliability-weighted event estimation
  groups   dump per-user merged location strings (Table II)
  export   write the collection (JSONL), location strings, or group CSV
  monitor  run the online burst detector against an injected event
  scenario dump a generator scenario as editable JSON (see analyze -scenario)
  serve    run the analysis and serve /metrics and /healthz
  stream   live-ingest the Streaming API and serve the incremental analysis
  fsck     verify, repair, back up or restore a checkpoint store directory
  router   front a worker ring: route ingest by user, scatter-gather queries
  worker   run one cluster shard: a stream engine behind the cluster API
  trace    fetch /debug/trace rings from daemons and print request trees`)
}

// resilienceFlags registers the shared chaos/degraded-mode flags on fs and
// returns a closure producing the resulting AnalyzeOptions after parsing.
func resilienceFlags(fs *flag.FlagSet) func() stir.AnalyzeOptions {
	cont := fs.Bool("continue-on-error", false, "degraded mode: skip users whose processing fails instead of aborting")
	rate := fs.Float64("fault-rate", 0, "inject transient geocode faults at this total rate (chaos runs)")
	fseed := fs.Int64("fault-seed", fault.SeedFromEnv(1), "fault-injection schedule seed ("+fault.EnvSeed+")")
	embedded := fs.Bool("geocode-embedded", false, "compile the gazetteer into the geofast grid and reverse-geocode at memory speed (identical output)")
	return func() stir.AnalyzeOptions {
		return stir.AnalyzeOptions{ContinueOnError: *cont, FaultRate: *rate, FaultSeed: *fseed, EmbeddedGeocode: *embedded}
	}
}

func makeDataset(kind string, users int, seed int64) (*stir.Dataset, error) {
	opts := stir.DatasetOptions{Seed: seed, Users: users}
	if kind == "world" {
		return stir.NewWorldDataset(opts)
	}
	if kind != "korean" {
		return nil, fmt.Errorf("unknown dataset %q (want korean or world)", kind)
	}
	return stir.NewKoreanDataset(opts)
}

func runAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	dataset := fs.String("dataset", "korean", "korean or world")
	users := fs.Int("users", 5200, "population size")
	seed := fs.Int64("seed", 1, "generation seed")
	scenario := fs.String("scenario", "", "generate from a scenario JSON file instead of the presets")
	csv := fs.Bool("csv", false, "emit per-group CSV instead of charts")
	resOpts := resilienceFlags(fs)
	fs.Parse(args)

	var (
		ds  *stir.Dataset
		err error
	)
	if *scenario != "" {
		ds, err = datasetFromScenario(*scenario)
	} else {
		ds, err = makeDataset(*dataset, *users, *seed)
	}
	if err != nil {
		return err
	}
	res, err := ds.AnalyzeWith(context.Background(), resOpts())
	if err != nil {
		return err
	}
	if *csv {
		t := report.NewTable("group", "users", "user_share", "tweets", "tweet_share", "avg_districts", "avg_match_share")
		for _, g := range stir.Groups() {
			st := res.Analysis.Stat(g)
			t.AddRow(g.String(), fmt.Sprint(st.Users), fmt.Sprintf("%.4f", st.UserShare),
				fmt.Sprint(st.Tweets), fmt.Sprintf("%.4f", st.TweetShare),
				fmt.Sprintf("%.3f", st.AvgDistinctDistricts), fmt.Sprintf("%.3f", st.AvgMatchShare))
		}
		fmt.Print(t.CSV())
		return nil
	}
	fmt.Println("Collection & refinement funnel (§III):")
	fmt.Println(stir.FormatFunnel(&res.Funnel))
	fmt.Println(stir.FormatAnalysis(&res.Analysis))
	return nil
}

func runEvent(args []string) error {
	fs := flag.NewFlagSet("event", flag.ExitOnError)
	users := fs.Int("users", 5200, "population size")
	seed := fs.Int64("seed", 1, "generation seed")
	method := fs.String("method", "particle", "median|centroid|kalman|particle")
	fs.Parse(args)

	var m stir.EstimationMethod
	switch *method {
	case "median":
		m = stir.MethodMedian
	case "centroid":
		m = stir.MethodCentroid
	case "kalman":
		m = stir.MethodKalman
	case "particle":
		m = stir.MethodParticle
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	ds, err := makeDataset("korean", *users, *seed)
	if err != nil {
		return err
	}
	ctx := context.Background()
	res, err := ds.Analyze(ctx)
	if err != nil {
		return err
	}
	opts := stir.EventOptions{Seed: *seed + 100, Method: m, GeoFraction: 0.06}
	truth, err := ds.InjectEvent(opts)
	if err != nil {
		return err
	}
	fmt.Printf("Injected %q event at %.3f,%.3f — %d reports (%d with GPS)\n\n",
		"earthquake", truth.Epicenter.Lat, truth.Epicenter.Lon, truth.Reports, truth.GeoReports)

	t := report.NewTable("Weighting", "Estimate error (km)", "Observations used")
	for _, cfg := range []struct {
		name    string
		weights map[int64]float64
	}{
		{"unweighted (Toretter/Twitris baseline)", nil},
		{"hard Top-1", res.ReliabilityWeights(stir.WeightHardTop1)},
		{"group prior", res.ReliabilityWeights(stir.WeightGroupPrior)},
		{"match share", res.ReliabilityWeights(stir.WeightMatchShare)},
	} {
		est, err := ds.EstimateEvent(ctx, truth, res, cfg.weights, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		t.AddRow(cfg.name, fmt.Sprintf("%.1f", est.ErrorKm), fmt.Sprint(est.Observations))
	}
	fmt.Println(t)
	return nil
}

func runGroups(args []string) error {
	fs := flag.NewFlagSet("groups", flag.ExitOnError)
	users := fs.Int("users", 2000, "population size")
	seed := fs.Int64("seed", 1, "generation seed")
	n := fs.Int("n", 5, "how many users to dump")
	fs.Parse(args)

	ds, err := makeDataset("korean", *users, *seed)
	if err != nil {
		return err
	}
	res, err := ds.Analyze(context.Background())
	if err != nil {
		return err
	}
	gs := res.Groupings
	sort.Slice(gs, func(i, j int) bool { return gs[i].UserID < gs[j].UserID })
	if *n > len(gs) {
		*n = len(gs)
	}
	for _, g := range gs[:*n] {
		fmt.Printf("user %d — profile %s — group %s (matched rank %d, %d/%d tweets at home)\n",
			g.UserID, g.Profile.Key(), g.Group, g.MatchedRank, g.MatchedTweets, g.TotalTweets)
		for _, m := range g.Merged {
			fmt.Printf("  %s\n", m)
		}
	}
	return nil
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dataset := fs.String("dataset", "korean", "korean or world")
	users := fs.Int("users", 5200, "population size")
	seed := fs.Int64("seed", 1, "generation seed")
	what := fs.String("what", "collection", "collection|strings|csv")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	ds, err := makeDataset(*dataset, *users, *seed)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *what {
	case "collection":
		return ds.ExportCollection(w)
	case "strings", "csv":
		res, err := ds.Analyze(context.Background())
		if err != nil {
			return err
		}
		if *what == "strings" {
			return res.ExportLocationStrings(w)
		}
		return res.ExportGroupCSV(w)
	default:
		return fmt.Errorf("unknown export kind %q", *what)
	}
}

func runMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	users := fs.Int("users", 2500, "population size")
	seed := fs.Int64("seed", 1, "generation seed")
	fs.Parse(args)

	ds, err := makeDataset("korean", *users, *seed)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := ds.Analyze(ctx)
	if err != nil {
		return err
	}
	weights := res.ReliabilityWeights(stir.WeightMatchShare)

	alerted := make(chan stir.Alert, 1)
	go func() {
		err := ds.MonitorEvents(ctx, res, weights, stir.MonitorOptions{
			WarmupCount: 10, MinCount: 5, Factor: 3, Method: stir.MethodCentroid,
		}, func(a stir.Alert) bool {
			alerted <- a
			return false
		})
		if err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "monitor:", err)
		}
	}()
	time.Sleep(300 * time.Millisecond)

	// Background chatter, then a burst near Daejeon.
	reporters := ds.SomeUserIDs(30)
	onset := time.Date(2011, 10, 5, 14, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		ds.PostTweet(reporters[i%len(reporters)], "earthquake docu on tv",
			onset.Add(-time.Duration(40-i)*time.Hour), 0, 0, false)
	}
	epi := stir.Point{Lat: 36.35, Lon: 127.38}
	fmt.Println("monitor armed; injecting burst near Daejeon...")
	for i := 0; i < 12; i++ {
		ds.PostTweet(reporters[i], "EARTHQUAKE!! shaking here",
			onset.Add(time.Duration(i*20)*time.Second), epi.Lat, epi.Lon, i%4 == 0)
	}
	select {
	case a := <-alerted:
		fmt.Printf("ALERT at %s: %d reports (%.1f/min)\n", a.At.Format(time.RFC3339), a.Count, a.Rate)
		if a.Located {
			fmt.Printf("estimated location %.3f,%.3f — %.1f km from epicentre\n",
				a.Location.Lat, a.Location.Lon, a.Location.DistanceKm(epi))
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("no alert before timeout")
	}
}

// runServe runs the §III analysis once and then keeps serving the metrics it
// produced — the funnel gauges, stage timings, HTTP and cache series all land
// in the default registry, so a scrape shows the whole run.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8032", "listen address")
	dataset := fs.String("dataset", "korean", "korean or world")
	users := fs.Int("users", 5200, "population size")
	seed := fs.Int64("seed", 1, "generation seed")
	resOpts := resilienceFlags(fs)
	over := daemon.OverloadFlags(fs)
	traces := daemon.TraceFlags(fs)
	disk := daemon.DiskFlags(fs)
	fs.Parse(args)

	// serve keeps no store; the -disk-* flags exist for fleet-wide flag
	// parity (one systemd template across the daemons) and gate nothing.
	if b := disk(); b.SoftBytes > 0 || b.HardBytes > 0 {
		fmt.Fprintln(os.Stderr, "stir serve: -disk-soft/-disk-hard noted but serve keeps no checkpoint store; nothing to budget")
	}

	ds, err := makeDataset(*dataset, *users, *seed)
	if err != nil {
		return err
	}
	// The stack comes up before the analysis so the run's own spans land in
	// the ring /debug/trace serves afterwards.
	cfg := over()
	stack := daemon.NewStackOpts(daemon.StackOptions{
		Service:  "stir",
		Overload: cfg,
		Trace:    traces(),
		Metrics:  obs.Default,
	})
	aOpts := resOpts()
	aOpts.Trace = stack.Tracer
	res, err := ds.AnalyzeWith(context.Background(), aOpts)
	if err != nil {
		return err
	}
	fmt.Println("Collection & refinement funnel (§III):")
	fmt.Println(stir.FormatFunnel(&res.Funnel))
	srv := overload.NewServer(overload.ServerOptions{
		Service:      "stir",
		Addr:         *addr,
		Handler:      stack.Handler,
		DrainTimeout: cfg.DrainTimeout,
		Ready:        stack.Ready,
		Logf:         stack.Log.Printf,
		WriteTimeout: 30 * time.Second,
	})
	fmt.Printf("stir serve: metrics on %s/metrics\n", *addr)
	return srv.ListenAndServe()
}

// runStream is the live path: it stands up the simulated platform's API
// server, replays the dataset's collection through the sample stream at a
// configurable rate, and runs internal/stream against it — the Streaming API
// access path of the paper's worldwide dataset, kept continuously analysed.
// While running (and after the replay drains), the incremental results are
// served on /v1/groups, /v1/users/{id} and /v1/stats next to /metrics.
func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	addr := fs.String("addr", ":8033", "query/metrics listen address")
	dataset := fs.String("dataset", "korean", "korean or world")
	users := fs.Int("users", 2000, "population size")
	seed := fs.Int64("seed", 1, "generation seed")
	shards := fs.Int("shards", stream.DefaultShards, "worker shard count")
	buffer := fs.Int("buffer", stream.DefaultBuffer, "per-shard queue capacity")
	drop := fs.Bool("drop", false, "shed load when a shard queue is full instead of backpressuring")
	rate := fs.Int("rate", 2000, "replay rate, tweets/second (0 = as fast as possible)")
	track := fs.String("track", "", "filter the sample stream by substring")
	ckptDir := fs.String("checkpoint", "", "checkpoint store directory (enables crash-safe resume)")
	ckptEvery := fs.Duration("checkpoint-every", 10*time.Second, "periodic checkpoint interval (needs -checkpoint)")
	duration := fs.Duration("duration", 0, "keep serving this long after the replay drains (0 = exit once drained)")
	geocodeURL := fs.String("geocode", "", "reverse-geocode through this HTTP service (cmd/geocoded) instead of in-process")
	geocodeEmbedded := fs.Bool("geocode-embedded", false, "reverse-geocode through the compiled geofast grid (identical output, no R-tree walk)")
	over := daemon.OverloadFlags(fs)
	traces := daemon.TraceFlags(fs)
	disk := daemon.DiskFlags(fs)
	fs.Parse(args)

	ds, err := makeDataset(*dataset, *users, *seed)
	if err != nil {
		return err
	}

	// The platform: the dataset's service behind its HTTP API on a loopback
	// port, consumed through the SDK like a real collection would be.
	api := twitter.NewAPIServer(ds.Service, twitter.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	apiSrv := &http.Server{Handler: api}
	go apiSrv.Serve(ln)
	defer apiSrv.Close()
	client := twitter.NewClient("http://" + ln.Addr().String())
	client.HTTP = &http.Client{} // no overall timeout: the stream is long-lived

	var store *storage.Store
	if *ckptDir != "" {
		store, err = storage.Open(*ckptDir, storage.Options{Budget: disk()})
		if err != nil {
			return err
		}
		defer store.Close()
		// Open salvages what it can from a damaged log; an operator should
		// hear about it (and `stir fsck -repair` it) rather than find out later.
		if rep := store.ScrubReport(); !rep.Clean() || rep.TornTails > 0 {
			fmt.Fprintf(os.Stderr, "stir: checkpoint store needed salvage: %s (run `stir fsck -dir %s -repair`)\n",
				rep.String(), *ckptDir)
		}
	}
	// The query surface rides the shared daemon stack: /v1/* is bulk traffic
	// that admission control may shed under overload, while /healthz, /readyz
	// and /metrics always answer. SIGTERM drains it before the final
	// checkpoint below, so no in-flight query is dropped without a response.
	// It comes up first so the engine can feed spans into its trace ring.
	cfg := over()
	stack := daemon.NewStackOpts(daemon.StackOptions{
		Service:  "stir-stream",
		Overload: cfg,
		Trace:    traces(),
		Metrics:  obs.Default,
	})
	// -geocode swaps the in-process gazetteer for the HTTP hop through
	// geocoded — the cross-daemon path whose traces span three services.
	// -geocode-embedded swaps it for the compiled geofast grid instead.
	if *geocodeURL != "" && *geocodeEmbedded {
		return fmt.Errorf("-geocode and -geocode-embedded are mutually exclusive")
	}
	var resolver geocode.Resolver = stream.NewGazetteerResolver(ds.Gazetteer, 10)
	if *geocodeURL != "" {
		resolver = geocode.NewClient(*geocodeURL, 65536)
	}
	if *geocodeEmbedded {
		er, err := stream.NewEmbeddedResolver(ds.Gazetteer, 10)
		if err != nil {
			return err
		}
		geofast.RegisterMetrics(obs.Default, "stream", er.Grid())
		resolver = er
	}
	eng, err := stream.New(stream.Config{
		Shards:       *shards,
		Buffer:       *buffer,
		DropWhenFull: *drop,
		Profiles: stream.NewProfileResolver(stream.ClientLookup(client),
			textnorm.NewRefiner(ds.Gazetteer), resolver, ds.Gazetteer),
		Resolver: resolver,
		Seed:     *seed,
		Store:    store,
		Trace:    stack.Tracer,
		// A resumed run replays the firehose from the start; per-user
		// last-ID dedup makes the overlap with the checkpoint idempotent.
		DedupByTweetID:  store != nil,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	stack.Mux.Handle("/v1/", eng.Handler())
	querySrv := overload.NewServer(overload.ServerOptions{
		Service:      "stir-stream",
		Addr:         *addr,
		Handler:      stack.Handler,
		DrainTimeout: cfg.DrainTimeout,
		Ready:        stack.Ready,
		Logf:         stack.Log.Printf,
	})
	if err := querySrv.Start(); err != nil {
		return err
	}
	defer func() {
		dctx, dcancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		defer dcancel()
		_ = querySrv.Shutdown(dctx)
	}()
	fmt.Printf("stir stream: queries on http://%s/v1/groups, metrics on /metrics\n", querySrv.Addr())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if store != nil {
		// Hard-degraded store → /readyz 503 (load balancers route around us)
		// while /healthz, /metrics and /debug/ keep answering.
		go daemon.WatchDegraded(ctx, stack.Ready, time.Second, eng.Degraded)
	}
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	runDone := make(chan error, 1)
	go func() {
		runDone <- eng.Run(runCtx, &stream.ClientSource{Client: client, Track: *track})
	}()

	// The sample stream only carries tweets posted after subscription: hold
	// the replay until the engine's connection is actually listening.
	for i := 0; i < 100 && ds.Service.StreamerCount() == 0 && ctx.Err() == nil; i++ {
		time.Sleep(50 * time.Millisecond)
	}
	if ds.Service.StreamerCount() == 0 {
		return fmt.Errorf("stream connection never subscribed")
	}

	// The traffic driver: replay the generated collection into the platform
	// so the sample stream carries it live.
	var tweets []*twitter.Tweet
	ds.Service.EachTweet(func(t *twitter.Tweet) bool {
		tweets = append(tweets, t)
		return true
	})
	var tick <-chan time.Time
	if *rate > 0 {
		ticker := time.NewTicker(time.Second / time.Duration(*rate))
		defer ticker.Stop()
		tick = ticker.C
	}
	// The sample stream is best-effort: it sheds tweets when the subscriber
	// lags. An unthrottled replay (or a -rate far above what the connection
	// drains) would overrun the firehose buffer and silently lose nearly
	// everything, so hold the posted-vs-ingested gap under the buffer. With
	// -track the server filters before delivery and the gap never closes, so
	// flow control only applies to the unfiltered stream.
	const flowWindow = 256
	posted := 0
	for _, t := range tweets {
		if ctx.Err() != nil {
			break
		}
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
			}
		}
		if *track == "" {
			for int64(posted)-eng.Ingested() > flowWindow && ctx.Err() == nil {
				time.Sleep(time.Millisecond)
			}
		}
		lat, lon, hasGeo := 0.0, 0.0, false
		if t.Geo != nil {
			lat, lon, hasGeo = t.Geo.Lat, t.Geo.Lon, true
		}
		if err := ds.PostTweet(int64(t.UserID), t.Text, t.CreatedAt, lat, lon, hasGeo); err != nil {
			return err
		}
		posted++
	}
	fmt.Printf("stir stream: replayed %d tweets\n", posted)
	if *duration > 0 {
		select {
		case <-time.After(*duration):
		case <-ctx.Done():
		}
	}
	// Let the connection deliver the tail: wait until the processed counter
	// stops moving, then shut the stream down and report.
	last := int64(-1)
	for ctx.Err() == nil {
		eng.Drain()
		if n := eng.Stats().Processed; n == last {
			break
		} else {
			last = n
		}
		time.Sleep(150 * time.Millisecond)
	}
	stopRun()
	if err := <-runDone; err != nil {
		return err
	}
	eng.Drain()
	if store != nil {
		if err := eng.Checkpoint(); err != nil {
			return err
		}
	}
	snap := eng.Snapshot()
	st := eng.Stats()
	fmt.Printf("processed %d geo tweets from %d users (%d dropped, %d reconnects)\n",
		st.Processed, st.Users, st.Dropped, st.Reconnects)
	fmt.Println(stir.FormatAnalysis(&snap.Analysis))
	return nil
}

// datasetFromScenario builds a dataset from a scenario JSON file.
func datasetFromScenario(path string) (*stir.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := synth.ReadScenario(f)
	if err != nil {
		return nil, err
	}
	cfg, err := sc.Config()
	if err != nil {
		return nil, err
	}
	gen, err := synth.New(cfg)
	if err != nil {
		return nil, err
	}
	svc := twitter.NewService()
	pop, err := gen.Populate(svc)
	if err != nil {
		return nil, err
	}
	kind := "korean"
	if sc.Gazetteer == "world" {
		kind = "world"
	}
	return &stir.Dataset{Service: svc, Gazetteer: cfg.Gazetteer, Population: pop, Kind: kind}, nil
}

func runScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	dataset := fs.String("dataset", "korean", "korean or world preset to dump")
	users := fs.Int("users", 5200, "population size")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	var (
		sc  synth.Scenario
		err error
	)
	switch *dataset {
	case "korean":
		gaz, gerr := admin.NewKoreaGazetteer()
		if gerr != nil {
			return gerr
		}
		sc = synth.ScenarioFromConfig("korean-preset", "korea", synth.KoreanConfig(*seed, *users, gaz))
	case "world":
		gaz, gerr := admin.NewWorldGazetteer()
		if gerr != nil {
			return gerr
		}
		sc = synth.ScenarioFromConfig("lady-gaga-preset", "world", synth.LadyGagaConfig(*seed, *users, gaz))
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}
	if err = synth.WriteScenario(w, sc); err != nil {
		return err
	}
	return nil
}
