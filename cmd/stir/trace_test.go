package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stir/internal/obs/trace"
)

func traceRingServer(t *testing.T, recs []trace.Record) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace" {
			http.NotFound(w, r)
			return
		}
		enc := json.NewEncoder(w)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				t.Error(err)
			}
		}
	}))
}

// The trace scrape must degrade: an unreachable daemon gets a warning line
// and the reachable rings still merge into a partial forest.
func TestScrapeRingsPartialDegradation(t *testing.T) {
	up := traceRingServer(t, []trace.Record{
		{Trace: "aabb", Span: "01", Service: "stir", Name: "analyze", Start: 1, Dur: 5},
		{Trace: "aabb", Span: "02", Parent: "01", Service: "geocoded", Name: "reverse", Start: 2, Dur: 1},
	})
	defer up.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // connection refused from here on

	var warn bytes.Buffer
	client := &http.Client{Timeout: time.Second}
	recs, fetched := scrapeRings(client,
		[]string{up.URL, down.URL, " ", ""}, "", 0, &warn)
	if fetched != 1 {
		t.Fatalf("want 1 reachable daemon, got %d", fetched)
	}
	if len(recs) != 2 {
		t.Fatalf("want the reachable ring's 2 records, got %d", len(recs))
	}
	if w := warn.String(); !strings.Contains(w, down.URL) || strings.Count(w, "\n") != 1 {
		t.Fatalf("want exactly one warning naming the dead daemon, got %q", w)
	}
	// The partial records still assemble into a forest.
	if forest := trace.BuildForest(recs); len(forest) != 1 {
		t.Fatalf("partial forest: want 1 tree, got %d", len(forest))
	}
}

// When every daemon is down the caller must see fetched == 0 (runTrace turns
// that into its only failure mode) and a warning per address.
func TestScrapeRingsAllDown(t *testing.T) {
	d1 := httptest.NewServer(http.NotFoundHandler())
	d1.Close()
	d2 := httptest.NewServer(http.NotFoundHandler())
	d2.Close()
	var warn bytes.Buffer
	recs, fetched := scrapeRings(&http.Client{Timeout: time.Second},
		[]string{d1.URL, d2.URL}, "", 0, &warn)
	if fetched != 0 || len(recs) != 0 {
		t.Fatalf("want nothing scraped, got fetched=%d recs=%d", fetched, len(recs))
	}
	if strings.Count(warn.String(), "\n") != 2 {
		t.Fatalf("want one warning per dead daemon, got %q", warn.String())
	}
}

// A daemon answering non-200 (no /debug/trace route) is skipped like a dead
// one, and the query parameters pass through to the ones that answer.
func TestScrapeRingsQueryPassthrough(t *testing.T) {
	var gotQuery string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotQuery = r.URL.RawQuery
	}))
	defer srv.Close()
	no404 := traceRingServer(t, nil) // serves only /debug/trace
	defer no404.Close()

	var warn bytes.Buffer
	_, fetched := scrapeRings(&http.Client{Timeout: time.Second},
		[]string{srv.URL, no404.URL + "/bogus"}, "aa", 7, &warn)
	if fetched != 1 {
		t.Fatalf("want only the answering daemon counted, got %d", fetched)
	}
	if gotQuery != "trace=aa&n=7" {
		t.Fatalf("query parameters not passed through: %q", gotQuery)
	}
}
