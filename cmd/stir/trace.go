package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"stir/internal/obs/trace"
)

// runTrace fetches the finished-span rings from a set of daemons'
// /debug/trace endpoints, merges them by trace ID, and prints each
// cross-process request tree — the CLI view of one logical request as it
// hopped stir → twitterd → geocoded.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addrs := fs.String("addrs", "localhost:8030,localhost:8031,localhost:8032",
		"comma-separated daemon addresses to scrape (host:port or full URL)")
	prefix := fs.String("trace", "", "only traces whose hex ID starts with this prefix")
	n := fs.Int("n", 0, "only the N newest spans per daemon (0 = whole ring)")
	jsonOut := fs.Bool("json", false, "emit the merged records as JSONL instead of trees")
	timeout := fs.Duration("timeout", 5*time.Second, "per-daemon fetch timeout")
	fs.Parse(args)

	client := &http.Client{Timeout: *timeout}
	recs, fetched := scrapeRings(client, strings.Split(*addrs, ","), *prefix, *n, os.Stderr)
	if fetched == 0 {
		return fmt.Errorf("no daemon answered at %s", *addrs)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	}
	forest := trace.BuildForest(recs)
	if len(forest) == 0 {
		fmt.Println("no spans (is -trace-sample set on the daemons?)")
		return nil
	}
	trace.WriteForest(os.Stdout, forest)
	return nil
}

// scrapeRings pulls the /debug/trace rings from every reachable daemon in
// addrs, writing one warning line per unreachable one to warn. It returns
// the merged records and how many daemons actually answered — a daemon that
// is down (or predates tracing) must not hide the rings the others still
// hold, so the caller only fails when the count is zero.
func scrapeRings(client *http.Client, addrs []string, prefix string, n int, warn io.Writer) ([]trace.Record, int) {
	var recs []trace.Record
	fetched := 0
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		got, err := fetchRing(client, addr, prefix, n)
		if err != nil {
			fmt.Fprintf(warn, "stir trace: %s: %v\n", addr, err)
			continue
		}
		fetched++
		recs = append(recs, got...)
	}
	return recs, fetched
}

// fetchRing pulls one daemon's /debug/trace JSONL export.
func fetchRing(client *http.Client, addr, prefix string, n int) ([]trace.Record, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u := strings.TrimRight(base, "/") + "/debug/trace"
	sep := "?"
	if prefix != "" {
		u += sep + "trace=" + prefix
		sep = "&"
	}
	if n > 0 {
		u += sep + "n=" + strconv.Itoa(n)
	}
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	var recs []trace.Record
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var rec trace.Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("decode %s: %w", u, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
