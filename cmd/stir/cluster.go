package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stir"
	"stir/internal/cluster"
	"stir/internal/daemon"
	"stir/internal/geofast"
	"stir/internal/obs"
	"stir/internal/overload"
	"stir/internal/storage"
	"stir/internal/stream"
	"stir/internal/textnorm"
	"stir/internal/twitter"
)

// runWorker stands up one cluster shard: a stream engine with its own
// checkpoint store behind the cluster worker API. The worker never touches
// the firehose — tweets arrive only through the router's /cluster/v1/ingest
// forwards — but it builds the same dataset as the router's universe (same
// -dataset/-users/-seed) so its profile service and gazetteer agree with the
// batch pipeline's.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", ":8041", "listen address")
	name := fs.String("name", "w1", "stable worker name (rejoin identity after a crash)")
	dataset := fs.String("dataset", "korean", "korean or world")
	users := fs.Int("users", 2000, "population size")
	seed := fs.Int64("seed", 1, "generation seed (must match the other workers)")
	shards := fs.Int("shards", stream.DefaultShards, "engine shard count")
	buffer := fs.Int("buffer", stream.DefaultBuffer, "per-shard queue capacity")
	ckptDir := fs.String("checkpoint", "", "checkpoint store directory (enables crash-safe resume and handoff recovery)")
	ckptEvery := fs.Duration("checkpoint-every", 10*time.Second, "periodic checkpoint interval (needs -checkpoint)")
	geocodeEmbedded := fs.Bool("geocode-embedded", false, "reverse-geocode through the compiled geofast grid (identical output, no R-tree walk)")
	over := daemon.OverloadFlags(fs)
	traces := daemon.TraceFlags(fs)
	disk := daemon.DiskFlags(fs)
	fs.Parse(args)

	ds, err := makeDataset(*dataset, *users, *seed)
	if err != nil {
		return err
	}
	var store *storage.Store
	if *ckptDir != "" {
		store, err = storage.Open(*ckptDir, storage.Options{Budget: disk()})
		if err != nil {
			return err
		}
		defer store.Close()
		if rep := store.ScrubReport(); !rep.Clean() || rep.TornTails > 0 {
			fmt.Fprintf(os.Stderr, "stir worker: checkpoint store needed salvage: %s\n", rep.String())
		}
	}
	cfg := over()
	stack := daemon.NewStackOpts(daemon.StackOptions{
		Service:  "stir-worker",
		Overload: cfg,
		Trace:    traces(),
		Metrics:  obs.Default,
	})
	resolver := stream.NewGazetteerResolver(ds.Gazetteer, 10)
	if *geocodeEmbedded {
		er, err := stream.NewEmbeddedResolver(ds.Gazetteer, 10)
		if err != nil {
			return err
		}
		geofast.RegisterMetrics(obs.Default, "worker", er.Grid())
		resolver = er
	}
	eng, err := stream.New(stream.Config{
		Shards: *shards,
		Buffer: *buffer,
		Profiles: stream.NewProfileResolver(stream.ServiceLookup(ds.Service),
			textnorm.NewRefiner(ds.Gazetteer), resolver, ds.Gazetteer),
		Resolver: resolver,
		Seed:     *seed,
		Store:    store,
		Trace:    stack.Tracer,
		// The router replays its journal past the last durable cursor on
		// rejoin; per-tweet dedup makes the overlap idempotent.
		DedupByTweetID:  true,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	w := cluster.NewWorker(*name, eng, obs.Default)
	stack.Mux.Handle("/cluster/", w.Handler())
	stack.Mux.Handle("/v1/", w.Handler())
	srv := overload.NewServer(overload.ServerOptions{
		Service:      "stir-worker",
		Addr:         *addr,
		Handler:      stack.Handler,
		DrainTimeout: cfg.DrainTimeout,
		Ready:        stack.Ready,
		Logf:         stack.Log.Printf,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("stir worker %s: cluster API on http://%s/cluster/v1, metrics on /metrics\n",
		*name, srv.Addr())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if store != nil {
		// Hard-degraded store → /readyz 503 so orchestrators route around
		// the worker, while liveness, /metrics and /debug/ stay up; the
		// router learns the same state from its hello probes.
		go daemon.WatchDegraded(ctx, stack.Ready, time.Second, eng.Degraded)
	}
	<-ctx.Done()
	dctx, dcancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer dcancel()
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	eng.Drain()
	if store != nil {
		return eng.Checkpoint()
	}
	return nil
}

// runRouter stands up the cluster front door: it joins the named workers
// into a rendezvous-hash ring, replays the dataset's collection through the
// routed ingest path (unless -no-replay), and serves the scatter-gather
// query surface on /v1/groups, /v1/stats and /v1/users/{id}.
func runRouter(args []string) error {
	fs := flag.NewFlagSet("router", flag.ExitOnError)
	addr := fs.String("addr", ":8040", "listen address")
	workers := fs.String("workers", "", "comma-separated name=url worker list, e.g. w1=http://localhost:8041,w2=http://localhost:8042")
	replicas := fs.Int("replicas", cluster.DefaultReplicas, "owners per partition (tweets forward to this many workers)")
	partitions := fs.Int("partitions", cluster.DefaultPartitions, "hash-space granularity (fixed for the cluster's lifetime)")
	journal := fs.Int("journal", cluster.DefaultJournalDepth, "per-worker replay journal depth")
	forwardBatch := fs.Int("forward-batch", cluster.DefaultForwardBatch, "tweets per forward POST")
	handoffTimeout := fs.Duration("handoff-timeout", cluster.DefaultHandoffTimeout, "bound on one handoff leg (export, import or drop)")
	scatterTimeout := fs.Duration("scatter-timeout", cluster.DefaultScatterTimeout, "bound on one worker's scatter-gather answer")
	maxFanout := fs.Int("max-fanout", cluster.DefaultMaxFanout, "concurrent outbound calls")
	seed := fs.Int64("seed", 1, "generation + retry-jitter seed")
	dataset := fs.String("dataset", "korean", "korean or world")
	users := fs.Int("users", 2000, "population size")
	rate := fs.Int("rate", 2000, "replay rate, tweets/second (0 = as fast as possible)")
	noReplay := fs.Bool("no-replay", false, "serve queries only; do not replay the dataset through the ring")
	ckptEvery := fs.Duration("checkpoint-every", 15*time.Second, "cluster-wide checkpoint interval (0 disables)")
	joinWait := fs.Duration("join-wait", 30*time.Second, "how long to keep retrying unreachable workers at startup")
	heartbeat := fs.Duration("heartbeat", cluster.DefaultHeartbeat, "failure-detector probe interval (0 disables the detector)")
	suspectAfter := fs.Duration("suspect-after", cluster.DefaultSuspectAfter, "probe silence before a worker turns suspect (forwards defer to journal)")
	downAfter := fs.Duration("down-after", cluster.DefaultDownAfter, "probe silence before a worker turns down (auto-failover threshold)")
	autoFailover := fs.Bool("auto-failover", false, "remove down workers automatically, re-sharding via journal replay")
	over := daemon.OverloadFlags(fs)
	traces := daemon.TraceFlags(fs)
	disk := daemon.DiskFlags(fs)
	fs.Parse(args)

	members, err := parseWorkers(*workers)
	if err != nil {
		return err
	}
	// The router's journal is in-memory (bounded by -journal); the -disk-*
	// flags exist for fleet-wide flag parity and gate nothing here. Worker
	// disk pressure reaches the router through hello probes instead.
	if b := disk(); b.SoftBytes > 0 || b.HardBytes > 0 {
		fmt.Fprintln(os.Stderr, "stir router: -disk-soft/-disk-hard noted but the router keeps no store; set them on the workers")
	}
	cfg := over()
	stack := daemon.NewStackOpts(daemon.StackOptions{
		Service:  "stir-router",
		Overload: cfg,
		Trace:    traces(),
		Metrics:  obs.Default,
	})
	r := cluster.New(cluster.Options{
		Partitions:     *partitions,
		Replicas:       *replicas,
		JournalDepth:   *journal,
		ForwardBatch:   *forwardBatch,
		HandoffTimeout: *handoffTimeout,
		ScatterTimeout: *scatterTimeout,
		MaxFanout:      *maxFanout,
		Seed:           *seed,
		Metrics:        obs.Default,
		Tracer:         stack.Tracer,
		Log:            stack.Log,
		Heartbeat:      *heartbeat,
		SuspectAfter:   *suspectAfter,
		DownAfter:      *downAfter,
		AutoFailover:   *autoFailover,
	})
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *heartbeat > 0 {
		go r.RunHealth(ctx)
	}

	// Workers may still be booting; keep retrying each join until -join-wait
	// runs out. A worker that joins late is a normal membership change, not a
	// startup failure.
	deadline := time.Now().Add(*joinWait)
	for _, m := range members {
		for {
			err := r.AddWorker(ctx, m.name, m.url)
			if err == nil {
				break
			}
			if time.Now().After(deadline) || ctx.Err() != nil {
				return fmt.Errorf("join %s (%s): %w", m.name, m.url, err)
			}
			stack.Log.Printf("join %s pending: %v", m.name, err)
			time.Sleep(500 * time.Millisecond)
		}
	}

	stack.Mux.Handle("/v1/", r.Handler())
	stack.Mux.Handle("/cluster/", r.Handler())
	srv := overload.NewServer(overload.ServerOptions{
		Service:      "stir-router",
		Addr:         *addr,
		Handler:      stack.Handler,
		DrainTimeout: cfg.DrainTimeout,
		Ready:        stack.Ready,
		Logf:         stack.Log.Printf,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		dctx, dcancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
		defer dcancel()
		_ = srv.Shutdown(dctx)
	}()
	fmt.Printf("stir router: %d workers, queries on http://%s/v1/groups, metrics on /metrics\n",
		len(members), srv.Addr())

	if *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					r.CheckpointAll(ctx)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	if !*noReplay {
		ds, err := makeDataset(*dataset, *users, *seed)
		if err != nil {
			return err
		}
		if err := replayThroughRing(ctx, r, ds, *rate, *forwardBatch); err != nil {
			return err
		}
	}
	<-ctx.Done()
	r.CheckpointAll(context.Background())
	return nil
}

// replayThroughRing drives the dataset's collection through the routed
// ingest path at the requested rate, in forward-batch-sized chunks.
func replayThroughRing(ctx context.Context, r *cluster.Router, ds *stir.Dataset, rate, batch int) error {
	tweets := allDatasetTweets(ds)
	var tick <-chan time.Time
	if rate > 0 {
		ticker := time.NewTicker(time.Second / time.Duration(rate) * time.Duration(batch))
		defer ticker.Stop()
		tick = ticker.C
	}
	forwarded, deferred := 0, 0
	for i := 0; i < len(tweets) && ctx.Err() == nil; i += batch {
		end := i + batch
		if end > len(tweets) {
			end = len(tweets)
		}
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
			}
		}
		rep := r.IngestBatch(ctx, tweets[i:end])
		forwarded += rep.Forwarded
		deferred += rep.Deferred
	}
	fmt.Printf("stir router: replayed %d tweets (%d deferred to journals)\n", forwarded, deferred)
	return nil
}

// allDatasetTweets flattens the dataset's collection in service order.
func allDatasetTweets(ds *stir.Dataset) []*twitter.Tweet {
	var tweets []*twitter.Tweet
	ds.Service.EachTweet(func(t *twitter.Tweet) bool {
		tweets = append(tweets, t)
		return true
	})
	return tweets
}

type memberFlag struct{ name, url string }

// parseWorkers splits "-workers w1=http://h:p,w2=http://h:p" into members.
func parseWorkers(s string) ([]memberFlag, error) {
	var out []memberFlag
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -workers entry %q (want name=url)", part)
		}
		out = append(out, memberFlag{name: name, url: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers is required (e.g. -workers w1=http://localhost:8041)")
	}
	return out, nil
}
