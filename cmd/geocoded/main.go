// Command geocoded serves the Yahoo-style reverse-geocoding XML API over the
// Korean (or worldwide) gazetteer — the stand-in for the metered third-party
// service the paper used (Fig. 5).
//
// Usage:
//
//	geocoded [-addr :8031] [-world] [-limit N] [-window 1h] [-slack 10] [-fast]
//	         [-max-inflight N] [-queue-depth N] [-target-latency D] [-drain-timeout D]
//	         [-fault-5xx R] [-fault-reset R] [-fault-timeout R] [-fault-corrupt R]
//	         [-fault-slow R] [-fault-seed S]
//	         [-trace-sample P] [-trace-ring N] [-trace-slow D] [-trace-seed S]
//
// The -fault-* flags (defaulting from the STIR_FAULT_* environment knobs)
// wrap the API in the deterministic fault injector, turning geocoded into a
// flaky upstream for resilience testing. The overload flags bound concurrent
// work; excess arrivals are shed with 503 + Retry-After while /healthz,
// /readyz and /metrics keep answering. The -trace-* flags control the
// distributed-tracing surface: inbound traceparent headers are continued,
// finished spans land in the ring served at /debug/trace, and /debug/pprof/
// exposes the live profiles. SIGTERM drains gracefully and the process
// exits 0.
//
// Try it:
//
//	curl 'http://localhost:8031/v1/reverse?lat=37.517&lon=126.866'
package main

import (
	"flag"
	"time"

	"stir/internal/admin"
	"stir/internal/daemon"
	"stir/internal/geocode"
	"stir/internal/logx"
	"stir/internal/obs"
	"stir/internal/overload"
)

func main() {
	if err := run(); err != nil {
		logx.New(nil, "geocoded").Fatal("startup failed", "err", err)
	}
}

func run() error {
	addr := flag.String("addr", ":8031", "listen address")
	world := flag.Bool("world", false, "serve the worldwide gazetteer instead of Korea-only")
	limit := flag.Int("limit", 0, "requests per window (0 = unlimited)")
	window := flag.Duration("window", time.Hour, "rate limit window")
	slack := flag.Float64("slack", 10, "km of slack for nearest-district fallback (negative disables)")
	fast := flag.Bool("fast", true, "compile the gazetteer into the geofast cell grid at startup (identical answers, memory-speed lookups)")
	faults := daemon.FaultFlags(flag.CommandLine)
	over := daemon.OverloadFlags(flag.CommandLine)
	traces := daemon.TraceFlags(flag.CommandLine)
	flag.Parse()

	var (
		gaz *admin.Gazetteer
		err error
	)
	if *world {
		gaz, err = admin.NewWorldGazetteer()
	} else {
		gaz, err = admin.NewKoreaGazetteer()
	}
	if err != nil {
		return err
	}

	cfg := over()
	stack := daemon.NewStackOpts(daemon.StackOptions{
		Service:  "geocoded",
		Overload: cfg,
		Trace:    traces(),
		Metrics:  obs.Default,
	})
	api := geocode.NewServer(gaz, geocode.ServerOptions{
		Limit:   *limit,
		Window:  *window,
		SlackKm: *slack,
		Fast:    *fast,
	})
	if inj := faults().Injector(obs.Default); inj != nil {
		stack.Mux.Handle("/", inj.Handler(api))
		stack.Log.Warn(nil, "fault injection armed")
	} else {
		stack.Mux.Handle("/", api)
	}

	srv := overload.NewServer(overload.ServerOptions{
		Service:      "geocoded",
		Addr:         *addr,
		Handler:      stack.Handler,
		DrainTimeout: cfg.DrainTimeout,
		Ready:        stack.Ready,
		Logf:         stack.Log.Printf,
		// Request/response only — a write deadline is safe here.
		WriteTimeout: 30 * time.Second,
	})
	stack.Log.Info(nil, "listening",
		"addr", *addr, "districts", gaz.Len(), "states", len(gaz.States()))
	return srv.ListenAndServe()
}
