// Command geocoded serves the Yahoo-style reverse-geocoding XML API over the
// Korean (or worldwide) gazetteer — the stand-in for the metered third-party
// service the paper used (Fig. 5).
//
// Usage:
//
//	geocoded [-addr :8031] [-world] [-limit N] [-window 1h] [-slack 10]
//	         [-fault-5xx R] [-fault-reset R] [-fault-timeout R] [-fault-corrupt R] [-fault-seed S]
//
// The -fault-* flags (defaulting from the STIR_FAULT_* environment knobs)
// wrap the API in the deterministic fault injector, turning geocoded into a
// flaky upstream for resilience testing.
//
// Try it:
//
//	curl 'http://localhost:8031/v1/reverse?lat=37.517&lon=126.866'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"stir/internal/admin"
	"stir/internal/geocode"
	"stir/internal/obs"
	"stir/internal/resilience/fault"
)

// faultFlags registers the shared server-side fault-injection flags,
// defaulting from the STIR_FAULT_* env knobs, and returns a closure
// producing the parsed rates and seed.
func faultFlags() func() (fault.Rates, int64) {
	env := fault.RatesFromEnv()
	f5xx := flag.Float64("fault-5xx", env.Error5xx, "injected 503 rate ("+fault.Env5xx+")")
	reset := flag.Float64("fault-reset", env.Reset, "injected connection-reset rate ("+fault.EnvReset+")")
	timeout := flag.Float64("fault-timeout", env.Timeout, "injected hold-then-504 rate ("+fault.EnvTimeout+")")
	corrupt := flag.Float64("fault-corrupt", env.Corrupt, "injected garbage-response rate ("+fault.EnvCorrupt+")")
	fseed := flag.Int64("fault-seed", fault.SeedFromEnv(1), "fault-injection schedule seed ("+fault.EnvSeed+")")
	return func() (fault.Rates, int64) {
		return fault.Rates{Timeout: *timeout, Error5xx: *f5xx, Reset: *reset, Corrupt: *corrupt}, *fseed
	}
}

func main() {
	addr := flag.String("addr", ":8031", "listen address")
	world := flag.Bool("world", false, "serve the worldwide gazetteer instead of Korea-only")
	limit := flag.Int("limit", 0, "requests per window (0 = unlimited)")
	window := flag.Duration("window", time.Hour, "rate limit window")
	slack := flag.Float64("slack", 10, "km of slack for nearest-district fallback (negative disables)")
	faults := faultFlags()
	flag.Parse()

	var (
		gaz *admin.Gazetteer
		err error
	)
	if *world {
		gaz, err = admin.NewWorldGazetteer()
	} else {
		gaz, err = admin.NewKoreaGazetteer()
	}
	if err != nil {
		log.Fatal("geocoded: ", err)
	}
	var srv http.Handler = geocode.NewServer(gaz, geocode.ServerOptions{
		Limit:   *limit,
		Window:  *window,
		SlackKm: *slack,
	})
	if rates, fseed := faults(); rates.Any() {
		srv = fault.New(fseed, rates, nil).Handler(srv)
		fmt.Printf("geocoded: fault injection armed (seed %d, rates %+v)\n", fseed, rates)
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/metrics", obs.Handler(obs.Default))
	mux.Handle("/healthz", obs.HealthzHandler("geocoded"))
	fmt.Printf("geocoded: %d districts across %d states; listening on %s\n",
		gaz.Len(), len(gaz.States()), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
