// Command geocoded serves the Yahoo-style reverse-geocoding XML API over the
// Korean (or worldwide) gazetteer — the stand-in for the metered third-party
// service the paper used (Fig. 5).
//
// Usage:
//
//	geocoded [-addr :8031] [-world] [-limit N] [-window 1h] [-slack 10]
//
// Try it:
//
//	curl 'http://localhost:8031/v1/reverse?lat=37.517&lon=126.866'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"stir/internal/admin"
	"stir/internal/geocode"
	"stir/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8031", "listen address")
	world := flag.Bool("world", false, "serve the worldwide gazetteer instead of Korea-only")
	limit := flag.Int("limit", 0, "requests per window (0 = unlimited)")
	window := flag.Duration("window", time.Hour, "rate limit window")
	slack := flag.Float64("slack", 10, "km of slack for nearest-district fallback (negative disables)")
	flag.Parse()

	var (
		gaz *admin.Gazetteer
		err error
	)
	if *world {
		gaz, err = admin.NewWorldGazetteer()
	} else {
		gaz, err = admin.NewKoreaGazetteer()
	}
	if err != nil {
		log.Fatal("geocoded: ", err)
	}
	srv := geocode.NewServer(gaz, geocode.ServerOptions{
		Limit:   *limit,
		Window:  *window,
		SlackKm: *slack,
	})
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/metrics", obs.Handler(obs.Default))
	mux.Handle("/healthz", obs.HealthzHandler("geocoded"))
	fmt.Printf("geocoded: %d districts across %d states; listening on %s\n",
		gaz.Len(), len(gaz.States()), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
