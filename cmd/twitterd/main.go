// Command twitterd serves the simulated Twitter API over HTTP, populated
// with a synthetic dataset. Useful for driving the crawler and the event
// detectors from separate processes, the way the paper's collection ran
// against the real service.
//
// Usage:
//
//	twitterd [-addr :8030] [-dataset korean|world] [-users N] [-seed S]
//	         [-rest-limit N] [-search-limit N] [-client-limit N] [-window 15m]
//	         [-max-inflight N] [-queue-depth N] [-target-latency D] [-drain-timeout D]
//	         [-fault-5xx R] [-fault-reset R] [-fault-timeout R] [-fault-corrupt R]
//	         [-fault-slow R] [-fault-seed S]
//	         [-trace-sample P] [-trace-ring N] [-trace-slow D] [-trace-seed S]
//
// The -fault-* flags (defaulting from the STIR_FAULT_* environment knobs)
// wrap the API in the deterministic fault injector, turning twitterd into a
// flaky upstream for resilience testing. The overload flags bound how much
// concurrent work the daemon accepts before shedding with 503 + Retry-After;
// /healthz, /readyz and /metrics are never shed. The -trace-* flags control
// the distributed-tracing surface: inbound traceparent headers are continued,
// finished spans land in the ring served at /debug/trace, and /debug/pprof/
// exposes the live profiles. SIGTERM drains gracefully: readiness flips,
// in-flight requests finish, and the process exits 0.
package main

import (
	"flag"
	"time"

	"stir"
	"stir/internal/daemon"
	"stir/internal/logx"
	"stir/internal/obs"
	"stir/internal/overload"
	"stir/internal/twitter"
)

func main() {
	if err := run(); err != nil {
		logx.New(nil, "twitterd").Fatal("startup failed", "err", err)
	}
}

func run() error {
	addr := flag.String("addr", ":8030", "listen address")
	dataset := flag.String("dataset", "korean", "korean or world")
	users := flag.Int("users", 5200, "population size")
	seed := flag.Int64("seed", 1, "generation seed")
	restLimit := flag.Int("rest-limit", 0, "REST rate limit per window (0 = unlimited)")
	searchLimit := flag.Int("search-limit", 0, "search rate limit per window (0 = unlimited)")
	clientLimit := flag.Int("client-limit", 0, "per-client rate limit per window, keyed by bearer token or IP (0 = unlimited)")
	window := flag.Duration("window", 15*time.Minute, "rate limit window")
	follower := flag.Bool("follower-graph", true, "wire a crawlable follower graph")
	faults := daemon.FaultFlags(flag.CommandLine)
	over := daemon.OverloadFlags(flag.CommandLine)
	traces := daemon.TraceFlags(flag.CommandLine)
	flag.Parse()

	opts := stir.DatasetOptions{Seed: *seed, Users: *users, FollowerGraph: *follower}
	var (
		ds  *stir.Dataset
		err error
	)
	if *dataset == "world" {
		ds, err = stir.NewWorldDataset(opts)
	} else {
		ds, err = stir.NewKoreanDataset(opts)
	}
	if err != nil {
		return err
	}

	cfg := over()
	stack := daemon.NewStackOpts(daemon.StackOptions{
		Service:  "twitterd",
		Overload: cfg,
		Trace:    traces(),
		Metrics:  obs.Default,
	})
	api := twitter.NewAPIServer(ds.Service, twitter.ServerOptions{
		RESTLimit:      *restLimit,
		SearchLimit:    *searchLimit,
		PerClientLimit: *clientLimit,
		Window:         *window,
	})
	if inj := faults().Injector(obs.Default); inj != nil {
		stack.Mux.Handle("/", inj.Handler(api))
		stack.Log.Warn(nil, "fault injection armed")
	} else {
		stack.Mux.Handle("/", api)
	}

	srv := overload.NewServer(overload.ServerOptions{
		Service:      "twitterd",
		Addr:         *addr,
		Handler:      stack.Handler,
		DrainTimeout: cfg.DrainTimeout,
		Ready:        stack.Ready,
		Logf:         stack.Log.Printf,
		// WriteTimeout stays 0: the statuses/sample stream is legitimately
		// unbounded, and a write deadline would cut every stream consumer.
	})
	stack.Log.Info(nil, "listening",
		"addr", *addr, "users", ds.Service.UserCount(), "tweets", ds.Service.TweetCount(),
		"seed_user", ds.Population.SeedUser)
	return srv.ListenAndServe()
}
