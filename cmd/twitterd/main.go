// Command twitterd serves the simulated Twitter API over HTTP, populated
// with a synthetic dataset. Useful for driving the crawler and the event
// detectors from separate processes, the way the paper's collection ran
// against the real service.
//
// Usage:
//
//	twitterd [-addr :8030] [-dataset korean|world] [-users N] [-seed S]
//	         [-rest-limit N] [-search-limit N] [-window 15m]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"stir"
	"stir/internal/obs"
	"stir/internal/twitter"
)

func main() {
	addr := flag.String("addr", ":8030", "listen address")
	dataset := flag.String("dataset", "korean", "korean or world")
	users := flag.Int("users", 5200, "population size")
	seed := flag.Int64("seed", 1, "generation seed")
	restLimit := flag.Int("rest-limit", 0, "REST rate limit per window (0 = unlimited)")
	searchLimit := flag.Int("search-limit", 0, "search rate limit per window (0 = unlimited)")
	window := flag.Duration("window", 15*time.Minute, "rate limit window")
	follower := flag.Bool("follower-graph", true, "wire a crawlable follower graph")
	flag.Parse()

	opts := stir.DatasetOptions{Seed: *seed, Users: *users, FollowerGraph: *follower}
	var (
		ds  *stir.Dataset
		err error
	)
	if *dataset == "world" {
		ds, err = stir.NewWorldDataset(opts)
	} else {
		ds, err = stir.NewKoreanDataset(opts)
	}
	if err != nil {
		log.Fatal("twitterd: ", err)
	}
	api := twitter.NewAPIServer(ds.Service, twitter.ServerOptions{
		RESTLimit:   *restLimit,
		SearchLimit: *searchLimit,
		Window:      *window,
	})
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.Handle("/metrics", obs.Handler(obs.Default))
	mux.Handle("/healthz", obs.HealthzHandler("twitterd"))
	fmt.Printf("twitterd: %d users, %d tweets; seed user id %d; listening on %s\n",
		ds.Service.UserCount(), ds.Service.TweetCount(), ds.Population.SeedUser, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
