// Command twitterd serves the simulated Twitter API over HTTP, populated
// with a synthetic dataset. Useful for driving the crawler and the event
// detectors from separate processes, the way the paper's collection ran
// against the real service.
//
// Usage:
//
//	twitterd [-addr :8030] [-dataset korean|world] [-users N] [-seed S]
//	         [-rest-limit N] [-search-limit N] [-window 15m]
//	         [-fault-5xx R] [-fault-reset R] [-fault-timeout R] [-fault-corrupt R] [-fault-seed S]
//
// The -fault-* flags (defaulting from the STIR_FAULT_* environment knobs)
// wrap the API in the deterministic fault injector, turning twitterd into a
// flaky upstream for resilience testing.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"stir"
	"stir/internal/obs"
	"stir/internal/resilience/fault"
	"stir/internal/twitter"
)

// faultFlags registers the shared server-side fault-injection flags,
// defaulting from the STIR_FAULT_* env knobs, and returns a closure
// producing the parsed rates and seed.
func faultFlags() func() (fault.Rates, int64) {
	env := fault.RatesFromEnv()
	f5xx := flag.Float64("fault-5xx", env.Error5xx, "injected 503 rate ("+fault.Env5xx+")")
	reset := flag.Float64("fault-reset", env.Reset, "injected connection-reset rate ("+fault.EnvReset+")")
	timeout := flag.Float64("fault-timeout", env.Timeout, "injected hold-then-504 rate ("+fault.EnvTimeout+")")
	corrupt := flag.Float64("fault-corrupt", env.Corrupt, "injected garbage-response rate ("+fault.EnvCorrupt+")")
	fseed := flag.Int64("fault-seed", fault.SeedFromEnv(1), "fault-injection schedule seed ("+fault.EnvSeed+")")
	return func() (fault.Rates, int64) {
		return fault.Rates{Timeout: *timeout, Error5xx: *f5xx, Reset: *reset, Corrupt: *corrupt}, *fseed
	}
}

func main() {
	addr := flag.String("addr", ":8030", "listen address")
	dataset := flag.String("dataset", "korean", "korean or world")
	users := flag.Int("users", 5200, "population size")
	seed := flag.Int64("seed", 1, "generation seed")
	restLimit := flag.Int("rest-limit", 0, "REST rate limit per window (0 = unlimited)")
	searchLimit := flag.Int("search-limit", 0, "search rate limit per window (0 = unlimited)")
	window := flag.Duration("window", 15*time.Minute, "rate limit window")
	follower := flag.Bool("follower-graph", true, "wire a crawlable follower graph")
	faults := faultFlags()
	flag.Parse()

	opts := stir.DatasetOptions{Seed: *seed, Users: *users, FollowerGraph: *follower}
	var (
		ds  *stir.Dataset
		err error
	)
	if *dataset == "world" {
		ds, err = stir.NewWorldDataset(opts)
	} else {
		ds, err = stir.NewKoreanDataset(opts)
	}
	if err != nil {
		log.Fatal("twitterd: ", err)
	}
	var api http.Handler = twitter.NewAPIServer(ds.Service, twitter.ServerOptions{
		RESTLimit:   *restLimit,
		SearchLimit: *searchLimit,
		Window:      *window,
	})
	if rates, fseed := faults(); rates.Any() {
		api = fault.New(fseed, rates, nil).Handler(api)
		fmt.Printf("twitterd: fault injection armed (seed %d, rates %+v)\n", fseed, rates)
	}
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.Handle("/metrics", obs.Handler(obs.Default))
	mux.Handle("/healthz", obs.HealthzHandler("twitterd"))
	fmt.Printf("twitterd: %d users, %d tweets; seed user id %d; listening on %s\n",
		ds.Service.UserCount(), ds.Service.TweetCount(), ds.Population.SeedUser, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
