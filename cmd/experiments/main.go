// Command experiments regenerates every table and figure of the paper's
// evaluation (E1-E7 in DESIGN.md) plus the design ablations, printing each
// artifact with its paper-vs-measured shape checks.
//
// Usage:
//
//	experiments [-korean N] [-world N] [-seed S] [-ablations] [-out FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"stir/internal/experiments"
)

func main() {
	korean := flag.Int("korean", experiments.DefaultScale.KoreanUsers, "Korean dataset size (paper: 52k, default 1:10)")
	world := flag.Int("world", experiments.DefaultScale.WorldUsers, "world (Lady Gaga) dataset size")
	seed := flag.Int64("seed", experiments.DefaultScale.Seed, "generation seed")
	ablations := flag.Bool("ablations", false, "also run the design ablations (A1-A3)")
	extensions := flag.Bool("extensions", false, "also run the beyond-paper extensions (X1-X2)")
	out := flag.String("out", "", "also write the report to this file")
	flag.Parse()

	sc := experiments.Scale{KoreanUsers: *korean, WorldUsers: *world, Seed: *seed}
	ctx := context.Background()
	start := time.Now()

	outcomes, err := experiments.All(ctx, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *ablations {
		abl, err := experiments.AllAblations(ctx, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
		outcomes = append(outcomes, abl...)
	}
	if *extensions {
		ext, err := experiments.Extensions(ctx, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extensions:", err)
			os.Exit(1)
		}
		outcomes = append(outcomes, ext...)
	}
	text := experiments.FormatAll(outcomes, time.Since(start), sc)
	fmt.Print(text)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			os.Exit(1)
		}
	}
	for _, o := range outcomes {
		if !o.Holds() {
			os.Exit(2) // some shape check failed; visible to CI
		}
	}
}
