# STIR build targets. `make verify` is the full pre-merge gate: tier-1
# (build + tests) plus vet and a race pass over the instrumented packages,
# where the obs middleware and crawl/pipeline counters run concurrently.

GO ?= go

.PHONY: build test vet race verify bench bench-obs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages that share metric registries across goroutines.
race:
	$(GO) test -race ./internal/obs/... ./internal/twitter/... ./internal/geocode/... ./internal/pipeline/... ./internal/storage/... ./internal/ratelimit/...

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem .

# Prove the observability layer stays cheap on the E1 funnel path.
bench-obs:
	$(GO) test -run xxx -bench BenchmarkObsOverhead -benchtime 10x .
