# STIR build targets. `make verify` is the full pre-merge gate: tier-1
# (build + tests) plus vet and a race pass over the instrumented packages,
# where the obs middleware and crawl/pipeline counters run concurrently.
# `make chaos` replays the seeded fault-injection suite under -race.

GO ?= go

# Fixed fault schedule for reproducible chaos runs (see internal/resilience/fault).
CHAOS_SEED ?= 2026

.PHONY: build test vet race verify chaos cluster-chaos partition-chaos disk-chaos crash load bench bench-obs bench-stream bench-cluster bench-geocode profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages that share metric registries across goroutines.
race:
	$(GO) test -race ./internal/obs/... ./internal/resilience/... ./internal/twitter/... ./internal/geocode/... ./internal/geofast/... ./internal/pipeline/... ./internal/storage/... ./internal/ratelimit/... ./internal/stream/... ./internal/overload/... ./internal/daemon/... ./internal/logx ./internal/leaktest ./internal/cluster/... ./cmd/stir/...

verify: build vet test race crash cluster-chaos partition-chaos disk-chaos

# Run the deterministic fault-injection suite (retry/breaker under injected
# faults, degraded pipeline runs, flaky-crawl convergence) with the race
# detector and a fixed seed, so a failure replays bit-for-bit.
chaos: crash cluster-chaos partition-chaos disk-chaos
	STIR_FAULT_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'Chaos|Fault|Inject|Quarantine|ContinueOnError|CrashMidUser' ./internal/resilience/... ./internal/twitter/... ./internal/pipeline/... ./internal/stream/... ./internal/overload/...

# Kill-a-worker cluster chaos: a seeded run destroys a worker mid-ingest
# (listener gone, memory gone, checkpoint torn by a fault-VFS power cut),
# keeps streaming through the outage, rejoins a replacement on the same
# store, and verifies the merged cluster grouping converges byte-identically
# to the batch pipeline with every deferral/replay accounted in metrics.
cluster-chaos:
	STIR_CLUSTER_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'TestClusterChaos|TestClusterCrashRecovery|TestClusterReplicatedIngest|TestClusterScatterPartialDegradation' ./internal/cluster/

# Network-partition chaos: a seeded asymmetric partition isolates a worker
# (its requests arrive, its responses die), the failure detector walks it
# alive -> suspect -> down on a manual clock, auto-failover recovers it from
# checkpoint + journal, a zombie hop with the pre-failover epoch is fenced,
# and after heal/rejoin the merged groupings converge byte-identically to
# batch — no acked write lost, no stale-epoch write applied.
partition-chaos:
	STIR_CLUSTER_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'TestClusterPartitionChaos|TestHealthDetector|TestHealthAutoFailover|TestStaleRouterFenced' ./internal/cluster/

# Resource-exhaustion chaos: a seeded run fills one worker's disk mid-stream
# (ENOSPC via the fault VFS), watches checkpoints defer and the store degrade
# to read-only, keeps streaming while the router journals the degraded
# worker's share (reads stay scattered, readyz down / liveness up), then
# frees the space and verifies heal + journal replay converge byte-identically
# to batch with zero evictions — plus the ENOSPC/budget unit suites.
disk-chaos:
	STIR_DISK_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'TestDiskExhaustionChaosConverges|TestDegradedAutoFailoverOnlyWhenEvicting' ./internal/cluster/
	STIR_DISK_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'TestCheckpointDefersOnDiskFullAndHeals' ./internal/stream/
	STIR_DISK_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'ENOSPC|Watermark|NoSpace|TestHardTripHealsViaCompaction' ./internal/storage/...

# Power-cut chaos for the durable store: a seeded workload is crashed at
# every filesystem mutation boundary (writes, fsyncs, dir fsyncs, renames —
# including mid-compaction), rebooted and verified: no acked-synced write is
# ever lost, damage is salvaged and quarantined, the log verifies clean.
crash:
	STIR_CRASH_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'TestPowerCut|TestBatchAtomicUnderInjectedCrash|TestSalvage|TestRepair|TestSegmentRollSurvivesCrash' ./internal/storage/...

# Drive the seeded overload spike (5x load against an AIMD-limited server
# with injected latency) and check the admission-control invariants: bounded
# admitted p99, probes never shed, sheds fully accounted, goodput recovery.
load:
	$(GO) test -race -count=1 -run TestOverloadChaos ./internal/overload/

bench:
	$(GO) test -bench=. -benchmem .

# Prove the observability layer stays cheap on the E1 funnel path.
bench-obs:
	$(GO) test -run xxx -bench BenchmarkObsOverhead -benchtime 10x .

# Sustained live-ingestion throughput (baseline recorded in BENCH_stream.json;
# the subsystem's floor is 100k tweets/sec on 4 shards with zero drops).
bench-stream:
	$(GO) test -run xxx -bench BenchmarkStreamIngest -benchtime 2s ./internal/stream/

# Routed-cluster baselines (recorded in BENCH_cluster.json): ingest
# throughput through the router's journal+forward path and scatter-gather
# latency, each at 1, 2 and 4 workers.
bench-cluster:
	$(GO) test -run xxx -bench BenchmarkClusterIngest -benchtime 1s ./internal/cluster/
	$(GO) test -run xxx -bench BenchmarkClusterScatterGroups -benchtime 300x ./internal/cluster/

# Embedded reverse-geocoding baselines (recorded in BENCH_geocode.json): the
# compiled cell grid's bulk and single-point hot paths against the R-tree
# walk it replaces. Floor: >=10M points/sec, 0 allocs/op on ResolveBulk.
bench-geocode:
	$(GO) test -run xxx -bench 'BenchmarkGeofast|BenchmarkRTree' -benchtime 2s ./internal/geofast/

# Offline continuous-profiling capture: run the sustained ingestion benchmark
# under the CPU and heap profilers and drop the profiles in profiles/ for
# `go tool pprof`. The live equivalents are served by every daemon at
# /debug/pprof/ (e.g. /debug/pprof/profile?seconds=10).
profile:
	mkdir -p profiles
	$(GO) test -run xxx -bench BenchmarkStreamIngest -benchtime 2s \
		-cpuprofile profiles/cpu.out -memprofile profiles/heap.out \
		-o profiles/stream.test ./internal/stream/
