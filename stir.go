// Package stir is the public API of the STIR library, a reproduction of
// "A Study of the Correlation between the Spatial Attributes on Twitter"
// (Lee & Hwang, ICDE Workshops 2012).
//
// The library answers the paper's question — how reliably does a Twitter
// user's free-text profile location predict where their GPS-tagged tweets
// are actually posted from? — and packages the answer as per-user
// reliability weights for tweet-based event-location estimation.
//
// The expected flow mirrors the paper:
//
//	ds, _   := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 1, Users: 5200})
//	res, _  := ds.Analyze(ctx)               // §III refinement + §IV analysis
//	fmt.Print(stir.FormatAnalysis(&res.Analysis))
//	w       := res.ReliabilityWeights(stir.WeightMatchShare)
//	est, _  := ds.EstimateEvent(ctx, stir.EventOptions{...}, w)
//
// Everything the paper needed but could not share — the Twitter crawl, the
// Yahoo geocoding API — is simulated in-process by internal substrates with
// the same interfaces and failure modes; see DESIGN.md.
package stir

import (
	"context"
	"fmt"

	"stir/internal/admin"
	"stir/internal/core"
	"stir/internal/geo"
	"stir/internal/pipeline"
	"stir/internal/report"
	"stir/internal/resilience/fault"
	"stir/internal/synth"
	"stir/internal/twitter"
)

// Re-exported result types. These aliases make the analysis outputs usable
// without importing internal packages.
type (
	// Analysis is the per-group statistics of one dataset (Figures 6-7).
	Analysis = core.Analysis
	// GroupStat is one Top-k group's aggregate.
	GroupStat = core.GroupStat
	// Group is the Top-k classification of a user.
	Group = core.Group
	// UserGrouping is the grouping method's per-user output.
	UserGrouping = core.UserGrouping
	// Place is a state#county district reference.
	Place = core.Place
	// Funnel counts the §III refinement attrition.
	Funnel = pipeline.Funnel
	// WeightForm selects how groupings convert to reliability weights.
	WeightForm = core.WeightForm
	// Point is a WGS-84 coordinate.
	Point = geo.Point
	// District is one administrative district.
	District = admin.District
)

// Group constants in figure order.
const (
	Top1    = core.Top1
	Top2    = core.Top2
	Top3    = core.Top3
	Top4    = core.Top4
	Top5    = core.Top5
	TopPlus = core.TopPlus
	NoneGrp = core.None
)

// Weight forms.
const (
	WeightHardTop1   = core.WeightHardTop1
	WeightGroupPrior = core.WeightGroupPrior
	WeightMatchShare = core.WeightMatchShare
)

// Groups lists all groups in display order.
func Groups() []Group { return core.Groups() }

// DatasetOptions configures dataset generation.
type DatasetOptions struct {
	// Seed fixes the synthetic population (default 1).
	Seed int64
	// Users is the population size (default 5200, the paper's Korean crawl
	// scaled 1:10).
	Users int
	// FollowerGraph wires a crawlable topology (needed only for Crawl-based
	// collection; direct analysis does not require it).
	FollowerGraph bool
}

func (o *DatasetOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Users <= 0 {
		o.Users = 5200
	}
}

// Dataset bundles a simulated platform, its gazetteer and its ground truth.
type Dataset struct {
	// Service is the simulated Twitter platform holding the population.
	Service *twitter.Service
	// Gazetteer is the administrative gazetteer the dataset was built over.
	Gazetteer *admin.Gazetteer
	// Population is the generator's ground truth (home district, mobility
	// class and profile quality per user).
	Population *synth.Population
	// Kind is "korean" or "world".
	Kind string
}

// NewKoreanDataset generates the paper's Korean dataset analogue.
func NewKoreanDataset(opts DatasetOptions) (*Dataset, error) {
	opts.fill()
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		return nil, err
	}
	cfg := synth.KoreanConfig(opts.Seed, opts.Users, gaz)
	cfg.FollowerGraph = opts.FollowerGraph
	return newDataset(cfg, gaz, "korean")
}

// NewWorldDataset generates the Lady Gaga (worldwide Streaming API) dataset
// analogue.
func NewWorldDataset(opts DatasetOptions) (*Dataset, error) {
	opts.fill()
	gaz, err := admin.NewWorldGazetteer()
	if err != nil {
		return nil, err
	}
	cfg := synth.LadyGagaConfig(opts.Seed, opts.Users, gaz)
	cfg.FollowerGraph = opts.FollowerGraph
	return newDataset(cfg, gaz, "world")
}

func newDataset(cfg synth.Config, gaz *admin.Gazetteer, kind string) (*Dataset, error) {
	gen, err := synth.New(cfg)
	if err != nil {
		return nil, err
	}
	svc := twitter.NewService()
	pop, err := gen.Populate(svc)
	if err != nil {
		return nil, err
	}
	return &Dataset{Service: svc, Gazetteer: gaz, Population: pop, Kind: kind}, nil
}

// Result is a completed §III+§IV run over one dataset.
type Result struct {
	// Funnel is the collection/refinement attrition.
	Funnel Funnel
	// Groupings is the per-user method output.
	Groupings []UserGrouping
	// Analysis is the per-group aggregate (the paper's figures).
	Analysis Analysis
	// ProfileDistrict maps surviving users to their profile district.
	ProfileDistrict map[twitter.UserID]*District
	// SkippedUsers lists the users a degraded (ContinueOnError) run
	// dropped, sorted by ID. Empty in strict mode.
	SkippedUsers []twitter.UserID
}

// Analyze runs the full §III pipeline (refine → geocode → group) and the
// §IV analysis over the dataset.
func (d *Dataset) Analyze(ctx context.Context) (*Result, error) {
	return d.AnalyzeWith(ctx, AnalyzeOptions{})
}

// AnalyzeWith is Analyze with explicit resilience options: ContinueOnError
// runs degraded, FaultRate/FaultSeed inject a deterministic geocode fault
// schedule. The store-related AnalyzeOptions fields are ignored here.
func (d *Dataset) AnalyzeWith(ctx context.Context, opts AnalyzeOptions) (*Result, error) {
	users, tweets := pipeline.CollectFromService(d.Service)
	p, err := buildPipeline(d.Gazetteer, opts)
	if err != nil {
		return nil, err
	}
	applyResilience(p, opts)
	r, err := p.Run(ctx, users, tweets)
	if err != nil {
		return nil, err
	}
	return resultOf(r), nil
}

// buildPipeline constructs the analysis pipeline over gaz, on the geofast
// embedded resolver when requested (the resolver swap happens before
// applyResilience so fault injection wraps whichever resolver runs).
func buildPipeline(gaz *admin.Gazetteer, opts AnalyzeOptions) (*pipeline.Pipeline, error) {
	if opts.EmbeddedGeocode {
		return pipeline.NewEmbedded(gaz, 10)
	}
	return pipeline.New(gaz, 10), nil
}

// applyResilience wires the shared resilience knobs into a pipeline.
func applyResilience(p *pipeline.Pipeline, opts AnalyzeOptions) {
	p.ContinueOnError = opts.ContinueOnError
	p.Trace = opts.Trace
	if opts.FaultRate > 0 {
		inj := fault.New(opts.FaultSeed, fault.Uniform(opts.FaultRate), nil)
		p.Resolver = inj.Resolver(p.Resolver)
	}
}

// resultOf converts a pipeline result into the public Result.
func resultOf(r *pipeline.Result) *Result {
	return &Result{
		Funnel:          r.Funnel,
		Groupings:       r.Groupings,
		Analysis:        r.Analysis,
		ProfileDistrict: r.ProfileDistrict,
		SkippedUsers:    r.SkippedUsers,
	}
}

// ReliabilityWeights converts the analysis into per-user weights (keyed by
// user ID) under the chosen form, the paper's §V proposal.
func (r *Result) ReliabilityWeights(form WeightForm) map[int64]float64 {
	w := &core.Weigher{Form: form, Ref: &r.Analysis}
	return w.WeightTable(r.Groupings)
}

// FormatAnalysis renders the analysis as the three terminal charts matching
// Fig. 7 (user share), Fig. 6 (average districts) and the slides' tweet
// share.
func FormatAnalysis(a *Analysis) string {
	users := report.NewBarChart()
	users.Format = "%.1f%%"
	avg := report.NewBarChart()
	tweets := report.NewBarChart()
	tweets.Format = "%.1f%%"
	for _, g := range Groups() {
		st := a.Stat(g)
		users.Add(g.String(), st.UserShare*100)
		tweets.Add(g.String(), st.TweetShare*100)
		if g != NoneGrp || st.Users > 0 {
			avg.Add(g.String(), st.AvgDistinctDistricts)
		}
	}
	return fmt.Sprintf(
		"Users per group (Fig. 7):\n%s\nAverage tweet districts per group (Fig. 6):\n%s\nTweets per group (slides):\n%s\nTotal: %d users, %d geo-tweets; overall avg districts %.2f; overall match share %.1f%%\n",
		users, avg, tweets, a.Users, a.Tweets, a.OverallAvgDistricts, a.OverallMatchShare*100)
}

// FormatFunnel renders the §III collection funnel as a table.
func FormatFunnel(f *Funnel) string {
	t := report.NewTable("Stage", "Count")
	t.AddRow("crawled users", fmt.Sprint(f.RawUsers))
	t.AddRow("collected tweets", fmt.Sprint(f.RawTweets))
	t.AddRow("tweets with GPS", fmt.Sprint(f.GeoTweets))
	t.AddRow("users with empty profile location", fmt.Sprint(f.EmptyProfiles))
	t.AddRow("users with well-defined profile", fmt.Sprint(f.WellDefinedUsers))
	t.AddRow("final users (well-defined + GPS tweets)", fmt.Sprint(f.FinalUsers))
	t.AddRow("final users' GPS tweets", fmt.Sprint(f.FinalGeoTweets))
	if f.SkippedUsers > 0 {
		t.AddRow("users skipped (degraded mode)", fmt.Sprint(f.SkippedUsers))
	}
	return t.String()
}
