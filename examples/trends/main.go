// Trends: the Twitris-style spatio-temporal-thematic browse (§II, Fig. 1).
// Tweets are bucketed into (day, district) cells — GPS position when the
// tweet has one, the author's refined profile district otherwise — and each
// cell is summarised by its top TF-IDF terms.
//
//	go run ./examples/trends
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"stir"
)

func main() {
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 13, Users: 3000})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ds.Analyze(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	sums, err := ds.Summarize(res, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d (day, district) cells from %d tweets\n\n",
		len(sums), ds.Service.TweetCount())

	// Show the busiest ten cells.
	sort.Slice(sums, func(i, j int) bool { return sums[i].Tweets > sums[j].Tweets })
	top := sums
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Printf("%-12s %-32s %7s  %s\n", "day", "district", "tweets", "top terms")
	for _, s := range top {
		terms := ""
		for i, ts := range s.TopTerms {
			if i > 0 {
				terms += ", "
			}
			terms += ts.Term
		}
		fmt.Printf("%-12s %-32s %7d  %s\n", s.Key.Day, s.Key.District, s.Tweets, terms)
	}
	fmt.Println("\nthis is the \"when / where / what\" browse Twitris offered; note that")
	fmt.Println("cells built from profile locations inherit their unreliability — the")
	fmt.Println("correlation analysis quantifies exactly how much.")
}
