// Earthquake: the paper's motivating application (§II, §V). An earthquake
// is injected near Daejeon; a Toretter-style detector tracks the keyword,
// finds the temporal burst, and estimates the epicentre from the reporting
// tweets' spatial attributes. Run four ways — unweighted profile locations
// (the Twitris/Toretter assumption) against the three reliability-weight
// forms derived from the correlation analysis — to see the paper's proposal
// pay off.
//
//	go run ./examples/earthquake
package main

import (
	"context"
	"fmt"
	"log"

	"stir"
)

func main() {
	ctx := context.Background()
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 7, Users: 5200})
	if err != nil {
		log.Fatal(err)
	}

	// The correlation analysis runs first: it supplies both the refined
	// profile districts and the reliability weights.
	res, err := ds.Analyze(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis: %d users classified; overall match share %.1f%%\n",
		res.Analysis.Users, res.Analysis.OverallMatchShare*100)

	// Inject the event. GPS reports are scarce (6%), as the paper found —
	// most observations will have to come from profile locations.
	opts := stir.EventOptions{
		Seed:        41,
		Epicenter:   stir.Point{Lat: 36.35, Lon: 127.38}, // Daejeon
		Method:      stir.MethodParticle,
		GeoFraction: 0.06,
	}
	truth, err := ds.InjectEvent(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected earthquake at %.3f,%.3f — %d reports, %d with GPS\n\n",
		truth.Epicenter.Lat, truth.Epicenter.Lon, truth.Reports, truth.GeoReports)

	configs := []struct {
		name    string
		weights map[int64]float64
	}{
		{"unweighted profiles (baseline)", nil},
		{"hard Top-1 weights", res.ReliabilityWeights(stir.WeightHardTop1)},
		{"group-prior weights", res.ReliabilityWeights(stir.WeightGroupPrior)},
		{"match-share weights", res.ReliabilityWeights(stir.WeightMatchShare)},
	}
	fmt.Printf("%-34s %12s %14s\n", "configuration", "error (km)", "observations")
	for _, c := range configs {
		est, err := ds.EstimateEvent(ctx, truth, res, c.weights, opts)
		if err != nil {
			log.Fatal(c.name, ": ", err)
		}
		fmt.Printf("%-34s %12.1f %14d\n", c.name, est.ErrorKm, est.Observations)
	}
	fmt.Println("\nreliability weighting discounts reporters whose profile location")
	fmt.Println("does not match where they actually tweet from — the paper's §V claim.")
}
