// Monitor: Toretter's deployment mode — watch the live stream, learn the
// background keyword rate, and alert within moments of a burst, estimating
// the event location from the reporters' spatial attributes as weighted by
// the reliability analysis.
//
//	go run ./examples/monitor
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"stir"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 3, Users: 2500})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ds.Analyze(ctx)
	if err != nil {
		log.Fatal(err)
	}
	weights := res.ReliabilityWeights(stir.WeightMatchShare)
	fmt.Printf("analysis ready: %d users with reliability weights\n", len(weights))

	// Start the monitor before any event tweets exist; it sees only what is
	// posted from now on, like a real stream consumer.
	alerts := make(chan stir.Alert, 1)
	go func() {
		err := ds.MonitorEvents(ctx, res, weights, stir.MonitorOptions{
			Keywords:    []string{"earthquake", "shaking"},
			Window:      10 * time.Minute,
			MinCount:    5,
			Factor:      3,
			WarmupCount: 10,
			Method:      stir.MethodCentroid,
		}, func(a stir.Alert) bool {
			alerts <- a
			return false // one alert is enough for the demo
		})
		if err != nil && ctx.Err() == nil {
			log.Fatal("monitor: ", err)
		}
	}()
	time.Sleep(300 * time.Millisecond) // let the stream attach

	// Feed background chatter (spread over past days in event time), then
	// inject a burst near Daejeon.
	reporters := ds.SomeUserIDs(30)
	onset := time.Date(2011, 10, 5, 14, 0, 0, 0, time.UTC)
	for i := 0; i < 24; i++ {
		at := onset.Add(-time.Duration(48-i*2) * time.Hour)
		ds.PostTweet(reporters[i%len(reporters)], "earthquake movie was fun", at, 0, 0, false)
	}
	fmt.Println("background chatter posted; injecting burst near Daejeon...")
	epicentre := stir.Point{Lat: 36.35, Lon: 127.38}
	for i := 0; i < 12; i++ {
		at := onset.Add(time.Duration(i*25) * time.Second)
		hasGeo := i%4 == 0 // GPS is scarce
		ds.PostTweet(reporters[i], "EARTHQUAKE!! the building is shaking", at,
			epicentre.Lat+0.01*float64(i%3), epicentre.Lon, hasGeo)
	}

	select {
	case a := <-alerts:
		fmt.Printf("\nALERT at %s — %d reports in window (%.1f/min)\n",
			a.At.Format(time.RFC3339), a.Count, a.Rate)
		if a.Located {
			fmt.Printf("estimated location: %.3f,%.3f (%.1f km from true epicentre)\n",
				a.Location.Lat, a.Location.Lon, a.Location.DistanceKm(epicentre))
		}
	case <-ctx.Done():
		log.Fatal("no alert before timeout")
	}
}
