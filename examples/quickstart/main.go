// Quickstart: generate a scaled Korean Twitter population, run the paper's
// §III refinement pipeline, and print the §IV figures — the library's
// five-minute tour.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"stir"
)

func main() {
	// 1. A dataset: a synthetic Twitter population standing in for the
	//    paper's 52k-user Korean crawl (here at 1:10 scale).
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 1, Users: 5200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d users, %d tweets\n\n", ds.Service.UserCount(), ds.Service.TweetCount())

	// 2. The analysis: refine free-text profile locations, keep users with
	//    GPS tweets, reverse-geocode everything to administrative districts,
	//    build the paper's location strings and classify users into Top-k
	//    groups.
	res, err := ds.Analyze(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Collection & refinement funnel (§III-B):")
	fmt.Println(stir.FormatFunnel(&res.Funnel))

	// 3. The figures.
	fmt.Println(stir.FormatAnalysis(&res.Analysis))

	// 4. The paper's takeaway, as numbers.
	a := &res.Analysis
	fmt.Printf("Paper claim check:\n")
	fmt.Printf("  nearly half the users post most tweets from their profile district: Top-1 = %.1f%%\n",
		a.Stat(stir.Top1).UserShare*100)
	fmt.Printf("  about 30%% never tweet from it at all:                        None  = %.1f%%\n",
		a.Stat(stir.NoneGrp).UserShare*100)

	// 5. The §V output: per-user reliability weights for event detectors.
	weights := res.ReliabilityWeights(stir.WeightMatchShare)
	var high, low int
	for _, w := range weights {
		if w >= 0.5 {
			high++
		} else {
			low++
		}
	}
	fmt.Printf("\nreliability weights: %d users ≥ 0.5, %d users < 0.5 — feed these into\n", high, low)
	fmt.Printf("an event detector to discount users whose profile location lies.\n")
}
