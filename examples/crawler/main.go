// Crawler: the paper's actual collection path, end to end over HTTP. A
// simulated Twitter API and a Yahoo-style geocoding API are served
// in-process; the follower-graph crawler walks the API from a seed user,
// checkpointing users and tweets into an on-disk store; the analysis then
// consumes the store, reverse-geocoding every GPS point through the metered
// HTTP geocoder.
//
//	go run ./examples/crawler
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"stir"
)

func main() {
	ctx := context.Background()

	// The "real world": a platform with a crawlable follower graph.
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{
		Seed: 5, Users: 1200, FollowerGraph: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	twitterSrv := httptest.NewServer(ds.TwitterHandler(stir.APIOptions{
		// Mild rate limits so the crawler's backoff path is exercised.
		RESTLimit: 4000, Window: time.Second,
	}))
	defer twitterSrv.Close()
	geocodeSrv := httptest.NewServer(ds.GeocodeHandler(0, time.Hour))
	defer geocodeSrv.Close()
	fmt.Printf("twitter api at %s, geocoder at %s\n", twitterSrv.URL, geocodeSrv.URL)

	// Crawl from the seed user, checkpointing into a store directory. Kill
	// and re-run this program with a fixed directory and the crawl resumes.
	dir, err := os.MkdirTemp("", "stir-crawl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	lastReport := 0
	stats, err := stir.Crawl(ctx, stir.CrawlOptions{
		BaseURL:  twitterSrv.URL,
		StoreDir: dir,
		OnProgress: func(done, queued int) {
			if done-lastReport >= 300 {
				lastReport = done
				fmt.Printf("  crawled %d users, %d queued\n", done, queued)
			}
		},
	}, ds.SeedUser())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl finished in %s: %d users, %d tweets (%d with GPS)\n\n",
		time.Since(start).Round(time.Millisecond), stats.Users, stats.Tweets, stats.GeoTweets)

	// Analyse the store through the HTTP geocoder — the full §III data path.
	res, err := stir.AnalyzeStore(ctx, stir.AnalyzeOptions{
		StoreDir:   dir,
		GeocodeURL: geocodeSrv.URL,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stir.FormatFunnel(&res.Funnel))
	fmt.Println(stir.FormatAnalysis(&res.Analysis))
}
