package stir

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"stir/internal/eventdetect"
	"stir/internal/geo"
	"stir/internal/synth"
	"stir/internal/twitter"
)

// Event-detection surface: inject a target event into a dataset and estimate
// its location with the Toretter-style detector, optionally weighted by the
// reliability analysis — the paper's proposed application (§V).

// EstimationMethod selects the location estimator.
type EstimationMethod = eventdetect.Method

// Estimation methods.
const (
	MethodMedian   = eventdetect.MethodMedian
	MethodCentroid = eventdetect.MethodCentroid
	MethodKalman   = eventdetect.MethodKalman
	MethodParticle = eventdetect.MethodParticle
)

// EventOptions describes an injected event.
type EventOptions struct {
	// Seed fixes injection and estimation randomness.
	Seed int64
	// Epicenter of the event; zero value picks central Seoul for Korean
	// datasets.
	Epicenter Point
	// RadiusKm is the felt radius (default 40).
	RadiusKm float64
	// Onset defaults to 2011-10-05 14:00 UTC, inside the collection window.
	Onset time.Time
	// Keyword defaults to "earthquake".
	Keyword string
	// ReportFraction is the probability a user who felt it reports
	// (default 0.5).
	ReportFraction float64
	// GeoFraction is the probability a report carries GPS (default 0.1 —
	// scarce, per the paper's observation).
	GeoFraction float64
	// Method picks the estimator (default particle filter).
	Method EstimationMethod
}

func (o *EventOptions) fill(kind string) {
	if o.RadiusKm <= 0 {
		o.RadiusKm = 40
	}
	if o.Onset.IsZero() {
		o.Onset = time.Date(2011, 10, 5, 14, 0, 0, 0, time.UTC)
	}
	if o.Keyword == "" {
		o.Keyword = "earthquake"
	}
	if o.ReportFraction <= 0 {
		o.ReportFraction = 0.5
	}
	if o.GeoFraction <= 0 {
		o.GeoFraction = 0.1
	}
	if (o.Epicenter == Point{}) {
		if kind == "world" {
			o.Epicenter = Point{Lat: 35.69, Lon: 139.69} // Tokyo
		} else {
			o.Epicenter = Point{Lat: 37.55, Lon: 126.99} // central Seoul
		}
	}
}

// EventEstimate is the outcome of one detection run.
type EventEstimate struct {
	// TrueEpicenter is the injected ground truth.
	TrueEpicenter Point
	// Estimated is the detector's location estimate.
	Estimated Point
	// ErrorKm is the great-circle distance between them.
	ErrorKm float64
	// Observations used (GPS + profile-derived).
	Observations int
	// GeoObservations is how many carried GPS.
	GeoObservations int
	// Reports is how many event tweets were injected.
	Reports int
}

// InjectEvent posts event reports into the dataset and returns the ground
// truth for later scoring. Call before Analyze+EstimateEvent when the event
// tweets should also flow through the correlation analysis, or after, when
// they should not.
func (d *Dataset) InjectEvent(opts EventOptions) (*synth.EventTruth, error) {
	opts.fill(d.Kind)
	return synth.InjectEvent(d.Service, d.Population, synth.EventConfig{
		Seed:           opts.Seed,
		Epicenter:      geo.Point(opts.Epicenter),
		RadiusKm:       opts.RadiusKm,
		Onset:          opts.Onset,
		WindowMinutes:  30,
		Keyword:        opts.Keyword,
		ReportFraction: opts.ReportFraction,
		GeoFraction:    opts.GeoFraction,
		NoiseReports:   25,
	})
}

// EstimateEvent runs the Toretter-style detector over the dataset.
// reliability maps user IDs to weights for profile-derived observations;
// nil runs the unweighted baseline the paper criticises. profileDistrict
// comes from a prior Analyze run.
func (d *Dataset) EstimateEvent(ctx context.Context, truth *synth.EventTruth, res *Result, reliability map[int64]float64, opts EventOptions) (*EventEstimate, error) {
	if truth == nil || res == nil {
		return nil, fmt.Errorf("stir: EstimateEvent needs event truth and an analysis result")
	}
	opts.fill(d.Kind)
	srv := httptest.NewServer(twitter.NewAPIServer(d.Service, twitter.ServerOptions{}))
	defer srv.Close()
	det := eventdetect.Toretter{
		Client:          twitter.NewClient(srv.URL),
		Keywords:        []string{opts.Keyword, "shaking"},
		Gazetteer:       d.Gazetteer,
		ProfileDistrict: res.ProfileDistrict,
		Reliability:     reliability,
		UseProfileObs:   true,
		Method:          opts.Method,
		Window:          30 * time.Minute,
		MinCount:        5,
		Factor:          3,
		Bounds:          d.Gazetteer.Bounds(),
		Seed:            opts.Seed,
	}
	detections, err := det.Run(ctx)
	if err != nil {
		return nil, err
	}
	best, err := pickDetection(detections, truth.Onset)
	if err != nil {
		return nil, err
	}
	est := &EventEstimate{
		TrueEpicenter: Point(truth.Epicenter),
		Estimated:     best.Location,
		ErrorKm:       best.Location.DistanceKm(truth.Epicenter),
		Observations:  len(best.Observations),
		Reports:       truth.Reports,
	}
	for _, o := range best.Observations {
		if o.Source == eventdetect.SourceGPS {
			est.GeoObservations++
		}
	}
	return est, nil
}

// pickDetection selects the detection whose burst covers the true onset,
// falling back to the strongest burst.
func pickDetection(ds []eventdetect.Detection, onset time.Time) (eventdetect.Detection, error) {
	if len(ds) == 0 {
		return eventdetect.Detection{}, fmt.Errorf("stir: detector found no event")
	}
	best := ds[0]
	for _, d := range ds[1:] {
		covers := !onset.Before(d.Burst.Start) && !onset.After(d.Burst.End.Add(30*time.Minute))
		bestCovers := !onset.Before(best.Burst.Start) && !onset.After(best.Burst.End.Add(30*time.Minute))
		if covers && !bestCovers {
			best = d
			continue
		}
		if covers == bestCovers && d.Burst.Count > best.Burst.Count {
			best = d
		}
	}
	return best, nil
}
