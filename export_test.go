package stir

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestExportImportRoundTrip exports a dataset as JSONL, re-analyses the
// imported copy, and checks the results match the direct analysis exactly.
func TestExportImportRoundTrip(t *testing.T) {
	ds, res := analyzeSmall(t, 17, 1200)
	var buf bytes.Buffer
	if err := ds.ExportCollection(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty export")
	}
	back, err := AnalyzeCollection(context.Background(), &buf, false)
	if err != nil {
		t.Fatal(err)
	}
	bf, rf := back.Funnel, res.Funnel
	if bf.RawUsers != rf.RawUsers || bf.RawTweets != rf.RawTweets ||
		bf.GeoTweets != rf.GeoTweets || bf.WellDefinedUsers != rf.WellDefinedUsers ||
		bf.FinalUsers != rf.FinalUsers || bf.FinalGeoTweets != rf.FinalGeoTweets {
		t.Fatalf("funnel mismatch: %+v vs %+v", bf, rf)
	}
	if back.Analysis.Users != res.Analysis.Users ||
		back.Analysis.Tweets != res.Analysis.Tweets ||
		back.Analysis.OverallMatchShare != res.Analysis.OverallMatchShare {
		t.Fatalf("analysis mismatch: %+v vs %+v", back.Analysis, res.Analysis)
	}
	for _, g := range Groups() {
		if back.Analysis.Stat(g).Users != res.Analysis.Stat(g).Users {
			t.Fatalf("%v users differ after roundtrip", g)
		}
	}
}

func TestExportLocationStringsAndImport(t *testing.T) {
	_, res := analyzeSmall(t, 19, 1500)
	var buf bytes.Buffer
	if err := res.ExportLocationStrings(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Fatal("no location strings exported")
	}
	back, err := ImportGroupings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Groupings) {
		t.Fatalf("imported %d groupings, want %d", len(back), len(res.Groupings))
	}
	// Group distribution must be preserved exactly.
	count := func(gs []UserGrouping) map[Group]int {
		m := map[Group]int{}
		for _, g := range gs {
			m[g.Group]++
		}
		return m
	}
	a, b := count(res.Groupings), count(back)
	for g, n := range a {
		if b[g] != n {
			t.Fatalf("group %v: %d vs %d", g, n, b[g])
		}
	}
}

func TestExportGroupCSV(t *testing.T) {
	_, res := analyzeSmall(t, 23, 800)
	var buf bytes.Buffer
	if err := res.ExportGroupCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 { // header + 7 groups
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "group,users") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestAnalyzeCollectionBadInput(t *testing.T) {
	if _, err := AnalyzeCollection(context.Background(), strings.NewReader("junk"), false); err == nil {
		t.Fatal("junk accepted")
	}
}
