package stir

import (
	"net/http"

	"stir/internal/obs"
)

// MetricsSnapshot is a point-in-time copy of every metric the library has
// recorded: the §III funnel gauges, pipeline stage timings, HTTP request
// series and cache stats.
type MetricsSnapshot = obs.Snapshot

// Metrics snapshots the default registry, which every component records into
// unless it was given its own registry (or obs.Discard).
func Metrics() MetricsSnapshot {
	return obs.Default.Snapshot()
}

// MetricsHandler serves the default registry in Prometheus text format (or
// JSON with ?format=json) — mount it on /metrics next to an API server.
func MetricsHandler() http.Handler {
	return obs.Handler(obs.Default)
}
