module stir

go 1.24
