package stir

import (
	"stir/internal/eventdetect"
	"stir/internal/twitter"
)

// Twitris-style surface: spatio-temporal-thematic summaries over a dataset.

// CellSummary is the thematic summary of one (day, district) cell.
type CellSummary = eventdetect.CellSummary

// TermScore pairs a term with its TF-IDF score.
type TermScore struct {
	Term  string
	Score float64
}

// Summarize runs the Twitris-style analysis over the whole dataset: every
// tweet is placed (GPS when available, otherwise the author's refined
// profile district from res) and each (day, district) cell is summarised by
// its top-k TF-IDF terms.
func (d *Dataset) Summarize(res *Result, topK int) ([]CellSummary, error) {
	tw := &eventdetect.Twitris{
		Gazetteer:       d.Gazetteer,
		ProfileDistrict: res.ProfileDistrict,
		TopK:            topK,
	}
	// Feed tweets straight off the store — no O(tweets) buffer.
	return tw.SummarizeEach(func(fn func(*twitter.Tweet) bool) {
		d.Service.EachTweet(fn)
	})
}
