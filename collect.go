package stir

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/obs/trace"
	"stir/internal/storage"
	"stir/internal/twitter"
)

// Collection surface: everything needed to run the paper's actual data
// path — an HTTP Twitter API, an HTTP reverse-geocoding API, a follower
// crawler with persistent checkpoints, and an analysis entry point that
// consumes the crawler's store through the HTTP geocoder.

// APIOptions tune the simulated Twitter API server.
type APIOptions struct {
	// RESTLimit / SearchLimit are fixed-window request budgets (0 = off).
	RESTLimit   int
	SearchLimit int
	// Window is the rate-limit window (default 15 minutes).
	Window time.Duration
}

// TwitterHandler returns an http.Handler serving the dataset's platform with
// the Twitter v1-style endpoints the crawler and detectors consume.
func (d *Dataset) TwitterHandler(opts APIOptions) http.Handler {
	return twitter.NewAPIServer(d.Service, twitter.ServerOptions{
		RESTLimit:   opts.RESTLimit,
		SearchLimit: opts.SearchLimit,
		Window:      opts.Window,
	})
}

// GeocodeHandler returns an http.Handler serving the Yahoo-style reverse
// geocoding XML API over the dataset's gazetteer. limit 0 disables rate
// limiting.
func (d *Dataset) GeocodeHandler(limit int, window time.Duration) http.Handler {
	return geocode.NewServer(d.Gazetteer, geocode.ServerOptions{
		Limit:  limit,
		Window: window,
	})
}

// SeedUser returns the crawl seed account (only meaningful when the dataset
// was built with FollowerGraph).
func (d *Dataset) SeedUser() int64 { return int64(d.Population.SeedUser) }

// CrawlStats summarises a crawl.
type CrawlStats struct {
	Users     int
	Tweets    int
	GeoTweets int
}

// CrawlOptions configure Crawl.
type CrawlOptions struct {
	// BaseURL of a Twitter API server (TwitterHandler or cmd/twitterd).
	BaseURL string
	// StoreDir holds the crawl store; an interrupted crawl resumes from it.
	StoreDir string
	// MaxUsers stops after this many profiles (0 = crawl everything).
	MaxUsers int
	// TimelineLimit caps tweets fetched per user (0 = all).
	TimelineLimit int
	// OnProgress, when set, is called after each crawled user.
	OnProgress func(done, queued int)
}

// Crawl walks the follower graph from the seed users, persisting users and
// tweets (with checkpoints) into StoreDir — the paper's §III-A collection.
func Crawl(ctx context.Context, opts CrawlOptions, seeds ...int64) (CrawlStats, error) {
	if opts.BaseURL == "" || opts.StoreDir == "" {
		return CrawlStats{}, fmt.Errorf("stir: Crawl needs BaseURL and StoreDir")
	}
	store, err := storage.Open(opts.StoreDir, storage.Options{})
	if err != nil {
		return CrawlStats{}, err
	}
	defer store.Close()
	ids := make([]twitter.UserID, len(seeds))
	for i, s := range seeds {
		ids[i] = twitter.UserID(s)
	}
	cr := &twitter.Crawler{
		Client:        twitter.NewClient(opts.BaseURL),
		Store:         store,
		MaxUsers:      opts.MaxUsers,
		TimelineLimit: opts.TimelineLimit,
		OnProgress:    opts.OnProgress,
	}
	res, err := cr.Run(ctx, ids...)
	if err != nil {
		return CrawlStats{}, err
	}
	return CrawlStats{Users: res.UsersCollected, Tweets: res.TweetsCollected, GeoTweets: res.GeoTweets}, nil
}

// AnalyzeOptions configure AnalyzeStore and Dataset.AnalyzeWith.
type AnalyzeOptions struct {
	// StoreDir is the crawl store to analyse.
	StoreDir string
	// GeocodeURL, when set, reverse-geocodes through that HTTP service
	// (GeocodeHandler or cmd/geocoded); otherwise an in-process resolver
	// over the chosen gazetteer is used.
	GeocodeURL string
	// World selects the worldwide gazetteer (default Korean).
	World bool
	// EmbeddedGeocode compiles the gazetteer into the geofast cell grid and
	// resolves points in-process at memory speed instead of through the
	// DirectResolver's R-tree walk. Grouping output is identical. Ignored
	// when GeocodeURL is set (the HTTP hop wins).
	EmbeddedGeocode bool
	// ContinueOnError runs the pipeline in degraded mode: users whose
	// processing fails are skipped and reported in Result.SkippedUsers
	// instead of aborting the run.
	ContinueOnError bool
	// FaultRate, when > 0, injects transient geocode faults at this total
	// rate through the deterministic fault harness — the built-in chaos
	// experiment for the resilience layer.
	FaultRate float64
	// FaultSeed fixes the injected fault schedule (default 1).
	FaultSeed int64
	// Trace, when set, opens a distributed root span for the run; client
	// hops (geocode over HTTP) join its tree and export at /debug/trace.
	Trace *trace.Tracer
}

// AnalyzeStore runs the §III refinement pipeline over a crawl store — the
// collection-to-analysis hand-off as the paper ran it, including the metered
// geocoding hop when GeocodeURL is set.
func AnalyzeStore(ctx context.Context, opts AnalyzeOptions) (*Result, error) {
	store, err := storage.Open(opts.StoreDir, storage.Options{})
	if err != nil {
		return nil, err
	}
	defer store.Close()
	users, tweets, err := twitter.LoadCollected(store)
	if err != nil {
		return nil, err
	}
	var gaz *admin.Gazetteer
	if opts.World {
		gaz, err = admin.NewWorldGazetteer()
	} else {
		gaz, err = admin.NewKoreaGazetteer()
	}
	if err != nil {
		return nil, err
	}
	p, err := buildPipeline(gaz, opts)
	if err != nil {
		return nil, err
	}
	if opts.GeocodeURL != "" {
		p.Resolver = geocode.NewClient(opts.GeocodeURL, 65536)
	}
	applyResilience(p, opts)
	r, err := p.Run(ctx, users, tweets)
	if err != nil {
		return nil, err
	}
	return resultOf(r), nil
}

// ResolvePoint reverse-geocodes one point through the dataset's gazetteer —
// a convenience for examples and tools.
func (d *Dataset) ResolvePoint(lat, lon float64) (*District, error) {
	p, err := geo.NewPoint(lat, lon)
	if err != nil {
		return nil, err
	}
	return d.Gazetteer.ResolvePoint(p, 10)
}
